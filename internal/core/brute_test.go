package core

import (
	"testing"

	"repro/internal/benefit"
	"repro/internal/market"
)

// tinySubmodularProblem builds instances small enough for brute force.
func tinySubmodularProblem(t testing.TB, seed uint64) *Problem {
	t.Helper()
	in := market.MustGenerate(market.Config{
		NumWorkers: 4, NumTasks: 3, NumCategories: 2,
		MinSpecialties: 1, MaxSpecialties: 2,
		MinCapacity: 1, MaxCapacity: 2,
		MinReplication: 1, MaxReplication: 3,
	}, seed)
	return MustNewProblem(in, benefit.DefaultParams())
}

func TestBruteForceSubmodularFeasible(t *testing.T) {
	for seed := uint64(1); seed <= 10; seed++ {
		p := tinySubmodularProblem(t, seed)
		if len(p.Edges) > 22 {
			continue
		}
		best, sel := p.BruteForceSubmodular()
		if err := p.Feasible(sel); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if v := p.SubmodularValue(sel); v != best {
			t.Fatalf("seed %d: reported %v, recomputed %v", seed, best, v)
		}
	}
}

func TestSubmodularGreedyMeasuredRatio(t *testing.T) {
	// The paper-level question: how close does the ½-guaranteed greedy get
	// to the true MBA-S optimum in practice?  Expect far above the bound.
	var greedySum, optSum float64
	checked := 0
	for seed := uint64(1); seed <= 30 && checked < 15; seed++ {
		p := tinySubmodularProblem(t, seed)
		if len(p.Edges) > 18 {
			continue
		}
		checked++
		opt, _ := p.BruteForceSubmodular()
		sel, err := (SubmodularGreedy{}).Solve(p, nil)
		if err != nil {
			t.Fatal(err)
		}
		g := p.SubmodularValue(sel)
		if g > opt+1e-9 {
			t.Fatalf("seed %d: greedy %v beat brute-force optimum %v", seed, g, opt)
		}
		if opt > 0 && g < opt/2-1e-9 {
			t.Fatalf("seed %d: greedy %v broke its 1/2 guarantee vs %v", seed, g, opt)
		}
		greedySum += g
		optSum += opt
	}
	if checked < 5 {
		t.Fatal("not enough small instances to measure")
	}
	if ratio := greedySum / optSum; ratio < 0.9 {
		t.Fatalf("measured mean ratio %v — far below typical submodular-greedy practice", ratio)
	}
}

func TestBruteForceSubmodularPanicsOnLarge(t *testing.T) {
	p := smallProblem(t, 1) // hundreds of edges
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on large instance")
		}
	}()
	p.BruteForceSubmodular()
}

func TestBruteForceEmptyProblem(t *testing.T) {
	p := MustNewProblem(emptyMarket(), benefit.DefaultParams())
	best, sel := p.BruteForceSubmodular()
	if best != 0 || len(sel) != 0 {
		t.Fatalf("empty: %v %v", best, sel)
	}
}
