package core

import (
	"testing"

	"repro/internal/benefit"
	"repro/internal/market"
)

// trapProblem builds the tight ½-approximation instance for edge-greedy:
// a heavy edge (w0,t0) of weight 1.0 whose choice blocks two 0.9 edges
// (w0,t1) and (w1,t0), with no (w1,t1) alternative.  Weights are realised
// through interest with λ=0, β=0 so mutual benefit equals interest exactly.
func trapProblem(t testing.TB) *Problem {
	t.Helper()
	in := &market.Instance{
		Name:          "trap",
		NumCategories: 2,
		Workers: []market.Worker{
			{
				ID: 0, Capacity: 1,
				Accuracy:    []float64{0.8, 0.8},
				Interest:    []float64{1.0, 0.9},
				Specialties: []int{0, 1},
			},
			{
				ID: 1, Capacity: 1,
				Accuracy:    []float64{0.8, 0.8},
				Interest:    []float64{0.9, 0},
				Specialties: []int{0},
			},
		},
		Tasks: []market.Task{
			{ID: 0, Category: 0, Replication: 1, Payment: 1, Difficulty: 0},
			{ID: 1, Category: 1, Replication: 1, Payment: 1, Difficulty: 0},
		},
		MaxPayment: 1,
	}
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	return MustNewProblem(in, benefit.Params{Lambda: 0, Beta: 0})
}

func TestTrapProblemShape(t *testing.T) {
	p := trapProblem(t)
	if len(p.Edges) != 3 {
		t.Fatalf("trap has %d edges, want 3", len(p.Edges))
	}
	gSel, _ := (Greedy{Kind: MutualWeight}).Solve(p, nil)
	eSel, _ := (Exact{Kind: MutualWeight}).Solve(p, nil)
	g := p.Evaluate(gSel).TotalMutual
	e := p.Evaluate(eSel).TotalMutual
	if g != 1.0 || e < 1.8-1e-9 {
		t.Fatalf("trap miscalibrated: greedy %v (want 1.0), exact %v (want 1.8)", g, e)
	}
}
