package core

import "sort"

// edgeOrder is the concrete sort.Interface behind every weight-ordered edge
// scan: decreasing weight, ties broken by ascending edge index (so the
// order is strict and the algorithms deterministic).  Weights are extracted
// once into a flat slice so each comparison reads two contiguous arrays
// instead of chasing EdgeInfo structs through a closure, which is what made
// the seed's sort.Slice the hot spot of Greedy.Solve.
type edgeOrder[T int | int32] struct {
	idx []T
	wt  []float64
}

func (o *edgeOrder[T]) Len() int { return len(o.idx) }

func (o *edgeOrder[T]) Less(a, b int) bool {
	if o.wt[a] != o.wt[b] {
		return o.wt[a] > o.wt[b]
	}
	return o.idx[a] < o.idx[b]
}

func (o *edgeOrder[T]) Swap(a, b int) {
	o.idx[a], o.idx[b] = o.idx[b], o.idx[a]
	o.wt[a], o.wt[b] = o.wt[b], o.wt[a]
}

// extractWeights fills wt[k] with idx[k]'s weight under kind.  The kind
// switch is hoisted out of the comparison loop into this extraction pass.
func extractWeights[T int | int32](p *Problem, kind WeightKind, idx []T, wt []float64) {
	switch kind {
	case MutualWeight:
		for k, ei := range idx {
			wt[k] = p.Edges[ei].M
		}
	case QualityWeight:
		for k, ei := range idx {
			wt[k] = p.Edges[ei].Q
		}
	case WorkerWeight:
		for k, ei := range idx {
			wt[k] = p.Edges[ei].B
		}
	default:
		panic("core: unknown weight kind")
	}
}

// sortEdgesByWeight sorts idx (edge indices into p.Edges) in place:
// decreasing weight under kind, ascending index on ties.
func sortEdgesByWeight[T int | int32](p *Problem, kind WeightKind, idx []T) {
	if len(idx) < 2 {
		return
	}
	wt := make([]float64, len(idx))
	extractWeights(p, kind, idx, wt)
	sort.Sort(&edgeOrder[T]{idx: idx, wt: wt})
}

// sortEdgesByWeightWS is sortEdgesByWeight drawing its weight buffer and
// sorter from ws, so repeated sorts through one workspace allocate nothing.
func sortEdgesByWeightWS(p *Problem, kind WeightKind, idx []int32, ws *Workspace) {
	if len(idx) < 2 {
		return
	}
	ws.sortWt = growF64(ws.sortWt, len(idx))
	wt := ws.sortWt[:len(idx)]
	extractWeights(p, kind, idx, wt)
	ws.sorter32.idx, ws.sorter32.wt = idx, wt
	sort.Sort(&ws.sorter32)
	ws.sorter32.idx, ws.sorter32.wt = nil, nil
}

// identityOrderWS fills ws.order with the edge indices 0..n-1.
func identityOrderWS(ws *Workspace, n int) []int32 {
	ws.order = growI32(ws.order, n)
	order := ws.order[:n]
	for i := range order {
		order[i] = int32(i)
	}
	return order
}

// takeFeasible is the shared feasibility scan of Greedy, Random and
// ShardedGreedy: walk order, take every edge whose endpoints still have
// capacity, decrementing capW/capT and appending to sel.
func takeFeasible[T int | int32](p *Problem, order []T, capW, capT []int, sel []int) []int {
	for _, ei := range order {
		e := &p.Edges[ei]
		if capW[e.W] > 0 && capT[e.T] > 0 {
			capW[e.W]--
			capT[e.T]--
			sel = append(sel, int(ei))
		}
	}
	return sel
}
