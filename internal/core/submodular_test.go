package core

import (
	"math"
	"testing"

	"repro/internal/benefit"
	"repro/internal/market"
	"repro/internal/stats"
)

func TestSubmodularValueEmptyAndMonotone(t *testing.T) {
	p := smallProblem(t, 21)
	if v := p.SubmodularValue(nil); v != 0 {
		t.Fatalf("empty value = %v", v)
	}
	// Adding edges never decreases the objective (worker part only grows;
	// quality part is clamped-monotone via majority prob ≥ 0.5 per panel...
	// majority prob can dip below the previous *panel* value but never below
	// 0.5, and here we compare cumulative selections).
	gSel, _ := (Greedy{Kind: MutualWeight}).Solve(p, nil)
	prev := 0.0
	for i := 1; i <= len(gSel); i++ {
		v := p.SubmodularValue(gSel[:i])
		// The worker part strictly grows; quality can locally dip when an
		// even panel forms, so allow a small tolerance relative to the
		// (1-λ)·B gain floor.
		if v < prev-0.5 {
			t.Fatalf("value collapsed at prefix %d: %v after %v", i, v, prev)
		}
		prev = v
	}
}

func TestSubmodularGreedyFeasibleAndCompetitive(t *testing.T) {
	// Greedy is a ½-approximation, so random can edge past it on a lucky
	// single seed; the comparison is therefore aggregated over seeds.
	var sgSum, rvSum float64
	for seed := uint64(1); seed <= 10; seed++ {
		p := smallProblem(t, seed)
		sel, err := (SubmodularGreedy{}).Solve(p, nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := p.Feasible(sel); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		rSel, _ := (Random{}).Solve(p, stats.NewRNG(seed))
		sgSum += p.SubmodularValue(sel)
		rvSum += p.SubmodularValue(rSel)
	}
	if sgSum <= rvSum {
		t.Fatalf("submodular greedy total %v did not beat random %v", sgSum, rvSum)
	}
}

func TestSubmodularGreedyBeatsLinearGreedyOnItsObjective(t *testing.T) {
	// Aggregate across seeds: optimising the true diminishing-returns
	// objective should (weakly) beat optimising the linear surrogate.
	var sgSum, linSum float64
	for seed := uint64(1); seed <= 10; seed++ {
		in := market.MustGenerate(market.MicrotaskTraceConfig(40, 25), seed)
		p := MustNewProblem(in, benefit.DefaultParams())
		sgSel, _ := (SubmodularGreedy{}).Solve(p, nil)
		linSel, _ := (Greedy{Kind: MutualWeight}).Solve(p, nil)
		sgSum += p.SubmodularValue(sgSel)
		linSum += p.SubmodularValue(linSel)
	}
	if sgSum < linSum*0.98 {
		t.Fatalf("submodular greedy (%v) clearly lost to linear greedy (%v) on MBA-S", sgSum, linSum)
	}
}

func TestSubmodularGreedyDiversifiesPanels(t *testing.T) {
	// One task with replication 3, four workers of equal high accuracy but
	// different interest.  The linear greedy and the submodular greedy both
	// fill the panel; check panel size is capped by replication.
	in := &market.Instance{
		Name:          "panel",
		NumCategories: 1,
		Workers: []market.Worker{
			{ID: 0, Capacity: 1, Accuracy: []float64{0.8}, Interest: []float64{0.9}, Specialties: []int{0}},
			{ID: 1, Capacity: 1, Accuracy: []float64{0.8}, Interest: []float64{0.7}, Specialties: []int{0}},
			{ID: 2, Capacity: 1, Accuracy: []float64{0.8}, Interest: []float64{0.5}, Specialties: []int{0}},
			{ID: 3, Capacity: 1, Accuracy: []float64{0.8}, Interest: []float64{0.3}, Specialties: []int{0}},
		},
		Tasks: []market.Task{
			{ID: 0, Category: 0, Replication: 3, Payment: 1, Difficulty: 0},
		},
		MaxPayment: 1,
	}
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	p := MustNewProblem(in, benefit.DefaultParams())
	sel, err := (SubmodularGreedy{}).Solve(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(sel) != 3 {
		t.Fatalf("panel size = %d, want 3", len(sel))
	}
	// The three highest-interest workers should be chosen (equal accuracy,
	// so worker utility breaks ties).
	chosen := map[int]bool{}
	for _, ei := range sel {
		chosen[p.Edges[ei].W] = true
	}
	if !chosen[0] || !chosen[1] || !chosen[2] {
		t.Fatalf("chose %v, want workers 0,1,2", chosen)
	}
}

func TestSubmodularValueMatchesHandComputation(t *testing.T) {
	in := &market.Instance{
		Name:          "hand",
		NumCategories: 1,
		Workers: []market.Worker{
			{ID: 0, Capacity: 1, Accuracy: []float64{0.8}, Interest: []float64{1}, Specialties: []int{0}},
			{ID: 1, Capacity: 1, Accuracy: []float64{0.6}, Interest: []float64{1}, Specialties: []int{0}},
		},
		Tasks: []market.Task{
			{ID: 0, Category: 0, Replication: 2, Payment: 0, Difficulty: 0},
		},
	}
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	// Beta=1 (money only, payment 0 → B=0), lambda=0.5.
	p := MustNewProblem(in, benefit.Params{Lambda: 0.5, Beta: 1})
	sel := []int{0, 1}
	if err := p.Feasible(sel); err != nil {
		t.Fatal(err)
	}
	// Panel {0.8, 0.6}: majority prob = both right + half of one-right
	// = 0.48 + 0.5·(0.8·0.4 + 0.2·0.6) = 0.48 + 0.22 = 0.70.
	// Quality part = 2·(0.70−0.5) = 0.4; objective = 0.5·0.4 + 0.5·0 = 0.2.
	got := p.SubmodularValue(sel)
	if math.Abs(got-0.2) > 1e-12 {
		t.Fatalf("value = %v, want 0.2", got)
	}
}
