package core

import (
	"math/rand"
	"testing"
)

// TestReconcileTakeKeepsHeaviest pins the primitive's contract on a hand
// case: one worker with capacity 1 contested by two picks keeps the heavier
// one, and capacities are decremented in place.
func TestReconcileTakeKeepsHeaviest(t *testing.T) {
	picks := []PickEdge{
		{W: 0, T: 0, Weight: 1.0, Ref: 0},
		{W: 0, T: 1, Weight: 3.0, Ref: 1},
		{W: 1, T: 1, Weight: 2.0, Ref: 2},
	}
	capW := []int{2, 1}
	capT := []int{1, 1}
	k := ReconcileTake(picks, capW, capT)
	// Take order is weight-descending: worker 0 takes task 1 (weight 3),
	// worker 1 is then refused task 1 (replication exhausted), and worker 0
	// still has room for task 0.
	if k != 2 {
		t.Fatalf("took %d picks, want 2", k)
	}
	if picks[0].Ref != 1 || picks[1].Ref != 0 {
		t.Fatalf("kept refs [%d %d], want [1 0]", picks[0].Ref, picks[1].Ref)
	}
	if capW[0] != 0 || capW[1] != 1 || capT[0] != 0 || capT[1] != 0 {
		t.Fatalf("capacities not decremented: capW=%v capT=%v", capW, capT)
	}
}

// TestReconcileTakeDeterministicTies pins tie-breaking: equal weights are
// ordered by ascending Ref, independent of input order.
func TestReconcileTakeDeterministicTies(t *testing.T) {
	base := []PickEdge{
		{W: 0, T: 0, Weight: 5, Ref: 2},
		{W: 0, T: 1, Weight: 5, Ref: 0},
		{W: 0, T: 2, Weight: 5, Ref: 1},
	}
	for perm := 0; perm < 6; perm++ {
		picks := make([]PickEdge, len(base))
		copy(picks, base)
		rand.New(rand.NewSource(int64(perm))).Shuffle(len(picks), func(i, j int) {
			picks[i], picks[j] = picks[j], picks[i]
		})
		capW := []int{2}
		capT := []int{1, 1, 1}
		k := ReconcileTake(picks, capW, capT)
		if k != 2 {
			t.Fatalf("perm %d: took %d, want 2", perm, k)
		}
		if picks[0].Ref != 0 || picks[1].Ref != 1 {
			t.Fatalf("perm %d: kept refs [%d %d], want [0 1]", perm, picks[0].Ref, picks[1].Ref)
		}
	}
}

// TestReconcileTakeFeasibility fuzzes random pick sets and checks the
// invariant the platform reconciler relies on: the kept prefix never
// exceeds either side's capacity and never leaves a feasible pick behind.
func TestReconcileTakeFeasibility(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		nW := 1 + rng.Intn(8)
		nT := 1 + rng.Intn(8)
		capW := make([]int, nW)
		capT := make([]int, nT)
		origW := make([]int, nW)
		origT := make([]int, nT)
		for i := range capW {
			capW[i] = rng.Intn(3)
			origW[i] = capW[i]
		}
		for j := range capT {
			capT[j] = rng.Intn(3)
			origT[j] = capT[j]
		}
		n := rng.Intn(30)
		picks := make([]PickEdge, n)
		for i := range picks {
			picks[i] = PickEdge{
				W:      int32(rng.Intn(nW)),
				T:      int32(rng.Intn(nT)),
				Weight: rng.Float64(),
				Ref:    int32(i),
			}
		}
		k := ReconcileTake(picks, capW, capT)
		usedW := make([]int, nW)
		usedT := make([]int, nT)
		for _, pe := range picks[:k] {
			usedW[pe.W]++
			usedT[pe.T]++
		}
		for i := range usedW {
			if usedW[i] > origW[i] {
				t.Fatalf("trial %d: worker %d over capacity (%d > %d)", trial, i, usedW[i], origW[i])
			}
			if capW[i] != origW[i]-usedW[i] {
				t.Fatalf("trial %d: capW[%d] = %d, want %d", trial, i, capW[i], origW[i]-usedW[i])
			}
		}
		for j := range usedT {
			if usedT[j] > origT[j] {
				t.Fatalf("trial %d: task %d over capacity (%d > %d)", trial, j, usedT[j], origT[j])
			}
			if capT[j] != origT[j]-usedT[j] {
				t.Fatalf("trial %d: capT[%d] = %d, want %d", trial, j, capT[j], origT[j]-usedT[j])
			}
		}
		// Maximality over the pick set: every loser must have been blocked.
		for _, pe := range picks[k:] {
			if capW[pe.W] > 0 && capT[pe.T] > 0 {
				t.Fatalf("trial %d: feasible pick left behind (w=%d t=%d)", trial, pe.W, pe.T)
			}
		}
	}
}
