package core

import (
	"context"

	"repro/internal/bipartite"
	"repro/internal/stats"
)

// Exact computes the optimal assignment for the linear objective under its
// weight kind by reduction to maximum-weight b-matching (min-cost max-flow,
// see internal/bipartite).  It is polynomial but super-linear in practice —
// the runtime experiment (R-Fig9) quantifies exactly where it stops being
// usable and Greedy takes over.
//
// Every solve rebuilds the flow reduction inside a Workspace's retained
// arenas (the bipartite graph, the flow network, and the matching engine's
// scratch — see bipartite.FlowWorkspace), so repeated exact solves allocate
// only the returned selection.  Leave WS nil to draw workspaces from the
// package pool (which the platform's round loop benefits from
// automatically), or pin one for single-threaded round-over-round reuse.
type Exact struct {
	// Kind selects the optimised value; MutualWeight is the paper's
	// algorithm, QualityWeight the strongest classical baseline.
	Kind WeightKind
	// WS optionally pins a reusable workspace across calls.
	WS *Workspace
}

// Name implements Solver.
func (s Exact) Name() string {
	if s.Kind == MutualWeight {
		return "exact"
	}
	return "exact-" + s.Kind.String()
}

// Solve implements Solver.  The RNG is unused: the optimum is deterministic.
func (s Exact) Solve(p *Problem, _ *stats.RNG) ([]int, error) {
	return s.solve(nil, p)
}

// SolveCtx implements ContextSolver: the flow kernel polls ctx once per
// augmenting path (bipartite.FlowWorkspace.Stop), so a deadline fire costs
// at most one more Dijkstra round before the solve aborts with ctx.Err().
// A ctx that never cancels leaves the solve bit-identical to Solve.
func (s Exact) SolveCtx(ctx context.Context, p *Problem, _ *stats.RNG) ([]int, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if ctx.Done() == nil {
		ctx = nil // cancellation impossible; skip the per-augmentation polls
	}
	return s.solve(ctx, p)
}

// solve runs the flow reduction, optionally under a cancellation context.
func (s Exact) solve(ctx context.Context, p *Problem) ([]int, error) {
	ws, pooled := acquireWorkspace(s.WS)
	defer releaseWorkspace(ws, pooled)
	g := p.graphForInto(s.Kind, ws)
	if ws.flowWS == nil {
		ws.flowWS = bipartite.NewFlowWorkspace()
	}
	if ctx != nil {
		ws.flowWS.Stop = func() bool { return ctx.Err() != nil }
		defer func() { ws.flowWS.Stop = nil }()
	}
	m := bipartite.MaxWeightBMatchingWS(g, p.capacityWInto(ws), p.capacityTInto(ws), ws.flowWS)
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return nil, err // partial flow: discard, never serve it
		}
	}
	return m.EdgeIdx, nil
}

// ExactSerial is the retained cold-path reference for Exact: a fresh graph
// and flow network per solve, Bellman–Ford potentials, per-call scratch.
// The parity tests pin Exact against it bit for bit, and the `matching`
// benchmark suite measures the workspace path's speedup over it.
type ExactSerial struct {
	Kind WeightKind
}

// Name implements Solver.
func (s ExactSerial) Name() string { return "exact-serial" }

// Solve implements Solver.
func (s ExactSerial) Solve(p *Problem, _ *stats.RNG) ([]int, error) {
	g := p.GraphFor(s.Kind)
	m := bipartite.MaxWeightBMatchingSerial(g, p.CapacityW(), p.CapacityT())
	return m.EdgeIdx, nil
}
