package core

import (
	"repro/internal/bipartite"
	"repro/internal/stats"
)

// Exact computes the optimal assignment for the linear objective under its
// weight kind by reduction to maximum-weight b-matching (min-cost max-flow,
// see internal/bipartite).  It is polynomial but super-linear in practice —
// the runtime experiment (R-Fig9) quantifies exactly where it stops being
// usable and Greedy takes over.
type Exact struct {
	// Kind selects the optimised value; MutualWeight is the paper's
	// algorithm, QualityWeight the strongest classical baseline.
	Kind WeightKind
}

// Name implements Solver.
func (s Exact) Name() string {
	if s.Kind == MutualWeight {
		return "exact"
	}
	return "exact-" + s.Kind.String()
}

// Solve implements Solver.  The RNG is unused: the optimum is deterministic.
func (s Exact) Solve(p *Problem, _ *stats.RNG) ([]int, error) {
	g := p.GraphFor(s.Kind)
	m := bipartite.MaxWeightBMatching(g, p.CapacityW(), p.CapacityT())
	return m.EdgeIdx, nil
}
