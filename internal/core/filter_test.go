package core

import (
	"testing"

	"repro/internal/stats"
)

func TestFilterProblemStructure(t *testing.T) {
	p := smallProblem(t, 51)
	fp := FilterProblem(p, MinQuality(0.5))
	if len(fp.Edges) >= len(p.Edges) {
		t.Fatalf("filter removed nothing: %d vs %d", len(fp.Edges), len(p.Edges))
	}
	for i := range fp.Edges {
		if fp.Edges[i].Q < 0.5 {
			t.Fatalf("edge %d below floor: %v", i, fp.Edges[i].Q)
		}
	}
	// Adjacency must be consistent with the new indices.
	count := 0
	for w := 0; w < fp.In.NumWorkers(); w++ {
		for _, ei := range fp.AdjW(w) {
			if fp.Edges[ei].W != w {
				t.Fatal("filtered adjacency broken")
			}
			count++
		}
	}
	if count != len(fp.Edges) {
		t.Fatalf("adjacency covers %d of %d edges", count, len(fp.Edges))
	}
}

func TestFilterProblemSolvable(t *testing.T) {
	p := smallProblem(t, 52)
	fp := FilterProblem(p, MinQuality(0.4))
	for _, s := range []Solver{Exact{Kind: MutualWeight}, Greedy{Kind: MutualWeight}, StableMatching{}} {
		sel, err := s.Solve(fp, stats.NewRNG(1))
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if err := fp.Feasible(sel); err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		for _, ei := range sel {
			if fp.Edges[ei].Q < 0.4 {
				t.Fatalf("%s assigned a below-floor pair", s.Name())
			}
		}
	}
}

func TestFilterProblemTradesCoverageForQuality(t *testing.T) {
	p := smallProblem(t, 53)
	baseSel, _ := (Exact{Kind: MutualWeight}).Solve(p, nil)
	base := p.Evaluate(baseSel)

	fp := FilterProblem(p, MinQuality(0.7))
	fSel, _ := (Exact{Kind: MutualWeight}).Solve(fp, nil)
	filtered := fp.Evaluate(fSel)

	if filtered.Pairs > base.Pairs {
		t.Fatalf("SLA increased coverage: %d > %d", filtered.Pairs, base.Pairs)
	}
	if filtered.Pairs > 0 && filtered.TotalQuality/float64(filtered.Pairs) <= base.TotalQuality/float64(base.Pairs) {
		t.Fatalf("SLA did not raise mean quality: %v vs %v",
			filtered.TotalQuality/float64(filtered.Pairs), base.TotalQuality/float64(base.Pairs))
	}
}

func TestFilterProblemKeepAllIsIdentityValued(t *testing.T) {
	p := smallProblem(t, 54)
	fp := FilterProblem(p, func(*EdgeInfo) bool { return true })
	a, _ := (Greedy{Kind: MutualWeight}).Solve(p, nil)
	b, _ := (Greedy{Kind: MutualWeight}).Solve(fp, nil)
	if p.Evaluate(a).TotalMutual != fp.Evaluate(b).TotalMutual {
		t.Fatal("keep-all filter changed the solution value")
	}
}

func TestFilterProblemEmptyResult(t *testing.T) {
	p := smallProblem(t, 55)
	fp := FilterProblem(p, MinQuality(2)) // impossible bar
	if len(fp.Edges) != 0 {
		t.Fatal("impossible bar kept edges")
	}
	sel, err := (Greedy{Kind: MutualWeight}).Solve(fp, nil)
	if err != nil || len(sel) != 0 {
		t.Fatalf("sel=%v err=%v", sel, err)
	}
}

func TestOnlineTaskGreedy(t *testing.T) {
	for seed := uint64(1); seed <= 8; seed++ {
		p := smallProblem(t, seed)
		sel, err := (OnlineTaskGreedy{Kind: MutualWeight}).Solve(p, stats.NewRNG(seed))
		if err != nil {
			t.Fatal(err)
		}
		if err := p.Feasible(sel); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		eSel, _ := (Exact{Kind: MutualWeight}).Solve(p, nil)
		if p.Evaluate(sel).TotalMutual > p.Evaluate(eSel).TotalMutual+1e-6 {
			t.Fatal("task-greedy beat offline optimum")
		}
	}
}
