package core

import (
	"repro/internal/stats"
)

// Greedy is the global edge-greedy algorithm: consider edges in decreasing
// weight order and take every edge whose endpoints still have capacity.
//
// The feasible assignments form the intersection of two partition matroids
// (worker capacities, task replications), so this greedy is a classical
// ½-approximation of the optimum — and in practice it lands within a few
// percent (R-Fig10).  Runtime is O(E log E) for the sort plus a linear scan,
// which is what makes it the only viable algorithm at millions of edges
// (R-Fig9).
type Greedy struct {
	Kind WeightKind
	// WS optionally pins a reusable workspace; nil borrows one from the
	// package pool per call.
	WS *Workspace
}

// Name implements Solver.
func (s Greedy) Name() string {
	switch {
	case s.Kind == QualityWeight:
		return "quality-only"
	case s.Kind == WorkerWeight:
		return "worker-only"
	default:
		return "greedy"
	}
}

// Solve implements Solver.  Ties are broken by edge index, so the result is
// deterministic; the RNG is unused.
func (s Greedy) Solve(p *Problem, _ *stats.RNG) ([]int, error) {
	ws, pooled := acquireWorkspace(s.WS)
	defer releaseWorkspace(ws, pooled)
	return copySel(greedyInto(p, s.Kind, ws)), nil
}

// greedyInto runs edge-greedy with all scratch drawn from ws and returns
// the selection backed by ws.sel (valid until ws's next use).  LocalSearch
// seeds from it without paying the copy.
func greedyInto(p *Problem, kind WeightKind, ws *Workspace) []int {
	order := identityOrderWS(ws, len(p.Edges))
	sortEdgesByWeightWS(p, kind, order, ws)
	ws.sel = growInts(ws.sel, 0)[:0]
	ws.sel = takeFeasible(p, order, p.capacityWInto(ws), p.capacityTInto(ws), ws.sel)
	return ws.sel
}

// QualityOnly is the strongest classical baseline: greedy assignment by
// requester-side quality alone, ignoring what workers get out of it.
func QualityOnly() Solver { return Greedy{Kind: QualityWeight} }

// WorkerOnly is the opposite baseline: greedy by worker utility alone.
func WorkerOnly() Solver { return Greedy{Kind: WorkerWeight} }

// Random assigns by scanning a uniformly shuffled edge order and taking
// whatever fits.  It is the sanity floor of every comparison plot.
type Random struct {
	// WS optionally pins a reusable workspace.
	WS *Workspace
}

// Name implements Solver.
func (Random) Name() string { return "random" }

// Solve implements Solver.
func (s Random) Solve(p *Problem, r *stats.RNG) ([]int, error) {
	ws, pooled := acquireWorkspace(s.WS)
	defer releaseWorkspace(ws, pooled)
	ws.ints = r.PermInto(ws.ints, len(p.Edges))
	ws.sel = growInts(ws.sel, 0)[:0]
	ws.sel = takeFeasible(p, ws.ints, p.capacityWInto(ws), p.capacityTInto(ws), ws.sel)
	return copySel(ws.sel), nil
}

// RoundRobin iterates tasks in id order and hands each open slot to the next
// eligible worker in a rotating cursor — the "fair dispatcher" many real
// platforms actually run, and a second sanity baseline.
type RoundRobin struct {
	// WS optionally pins a reusable workspace.
	WS *Workspace
}

// Name implements Solver.
func (RoundRobin) Name() string { return "round-robin" }

// Solve implements Solver.  Deterministic; the RNG is unused.
func (s RoundRobin) Solve(p *Problem, _ *stats.RNG) ([]int, error) {
	ws, pooled := acquireWorkspace(s.WS)
	defer releaseWorkspace(ws, pooled)
	capW := p.capacityWInto(ws)
	capT := p.capacityTInto(ws)
	chosen := growBoolZero(ws.chosen, len(p.Edges))
	ws.chosen = chosen
	ws.sel = growInts(ws.sel, 0)[:0]
	sel := ws.sel
	// cursor[t] rotates over AdjT(t) so repeated slots of the same task go
	// to different workers; the chosen guard prevents re-taking an edge when
	// the cursor wraps around.
	progress := true
	ws.ints = growInts(ws.ints, p.In.NumTasks())
	cursor := ws.ints
	clear(cursor)
	for progress {
		progress = false
		for t := 0; t < p.In.NumTasks(); t++ {
			if capT[t] == 0 {
				continue
			}
			adj := p.AdjT(t)
			for n := 0; n < len(adj); n++ {
				ei := int(adj[cursor[t]%len(adj)])
				cursor[t]++
				e := &p.Edges[ei]
				if !chosen[ei] && capW[e.W] > 0 {
					chosen[ei] = true
					capW[e.W]--
					capT[t]--
					sel = append(sel, ei)
					progress = true
					break
				}
			}
		}
	}
	ws.sel = sel
	return copySel(sel), nil
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
