package core

import (
	"repro/internal/stats"
)

// Greedy is the global edge-greedy algorithm: consider edges in decreasing
// weight order and take every edge whose endpoints still have capacity.
//
// The feasible assignments form the intersection of two partition matroids
// (worker capacities, task replications), so this greedy is a classical
// ½-approximation of the optimum — and in practice it lands within a few
// percent (R-Fig10).  Runtime is O(E log E) for the sort plus a linear scan,
// which is what makes it the only viable algorithm at millions of edges
// (R-Fig9).
type Greedy struct {
	Kind WeightKind
}

// Name implements Solver.
func (s Greedy) Name() string {
	switch {
	case s.Kind == QualityWeight:
		return "quality-only"
	case s.Kind == WorkerWeight:
		return "worker-only"
	default:
		return "greedy"
	}
}

// Solve implements Solver.  Ties are broken by edge index, so the result is
// deterministic; the RNG is unused.
func (s Greedy) Solve(p *Problem, _ *stats.RNG) ([]int, error) {
	order := identityOrder(len(p.Edges))
	sortEdgesByWeight(p, s.Kind, order)
	sel := make([]int, 0, minInt(p.In.TotalSlots(), p.In.TotalCapacity()))
	return takeFeasible(p, order, p.CapacityW(), p.CapacityT(), sel), nil
}

// QualityOnly is the strongest classical baseline: greedy assignment by
// requester-side quality alone, ignoring what workers get out of it.
func QualityOnly() Solver { return Greedy{Kind: QualityWeight} }

// WorkerOnly is the opposite baseline: greedy by worker utility alone.
func WorkerOnly() Solver { return Greedy{Kind: WorkerWeight} }

// Random assigns by scanning a uniformly shuffled edge order and taking
// whatever fits.  It is the sanity floor of every comparison plot.
type Random struct{}

// Name implements Solver.
func (Random) Name() string { return "random" }

// Solve implements Solver.
func (Random) Solve(p *Problem, r *stats.RNG) ([]int, error) {
	order := r.Perm(len(p.Edges))
	sel := make([]int, 0, minInt(p.In.TotalSlots(), p.In.TotalCapacity()))
	return takeFeasible(p, order, p.CapacityW(), p.CapacityT(), sel), nil
}

// RoundRobin iterates tasks in id order and hands each open slot to the next
// eligible worker in a rotating cursor — the "fair dispatcher" many real
// platforms actually run, and a second sanity baseline.
type RoundRobin struct{}

// Name implements Solver.
func (RoundRobin) Name() string { return "round-robin" }

// Solve implements Solver.  Deterministic; the RNG is unused.
func (RoundRobin) Solve(p *Problem, _ *stats.RNG) ([]int, error) {
	capW := p.CapacityW()
	capT := p.CapacityT()
	chosen := make([]bool, len(p.Edges))
	var sel []int
	// cursor[t] rotates over AdjT(t) so repeated slots of the same task go
	// to different workers; the chosen guard prevents re-taking an edge when
	// the cursor wraps around.
	progress := true
	cursor := make([]int, p.In.NumTasks())
	for progress {
		progress = false
		for t := 0; t < p.In.NumTasks(); t++ {
			if capT[t] == 0 {
				continue
			}
			adj := p.AdjT(t)
			for n := 0; n < len(adj); n++ {
				ei := int(adj[cursor[t]%len(adj)])
				cursor[t]++
				e := &p.Edges[ei]
				if !chosen[ei] && capW[e.W] > 0 {
					chosen[ei] = true
					capW[e.W]--
					capT[t]--
					sel = append(sel, ei)
					progress = true
					break
				}
			}
		}
	}
	return sel, nil
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
