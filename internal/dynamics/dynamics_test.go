package dynamics

import (
	"testing"

	"repro/internal/benefit"
	"repro/internal/core"
	"repro/internal/market"
)

func baseConfig(solver core.Solver) Config {
	return Config{
		Rounds:        10,
		Market:        market.Config{NumWorkers: 60, NumTasks: 40},
		Params:        benefit.DefaultParams(),
		Solver:        solver,
		TasksPerRound: 40,
	}
}

func TestSimulateBasicShape(t *testing.T) {
	rep, err := Simulate(baseConfig(core.Greedy{Kind: core.MutualWeight}), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rounds) != 10 {
		t.Fatalf("rounds = %d", len(rep.Rounds))
	}
	if rep.Rounds[0].Active != 60 || rep.Rounds[0].Participation != 1 {
		t.Fatalf("round 0 = %+v", rep.Rounds[0])
	}
	for i, rr := range rep.Rounds {
		if rr.Round != i {
			t.Fatalf("round numbering wrong at %d", i)
		}
		if rr.Participation < 0 || rr.Participation > 1 {
			t.Fatalf("participation %v", rr.Participation)
		}
	}
	if rep.FinalParticipation < 0 || rep.FinalParticipation > 1 {
		t.Fatalf("final participation %v", rep.FinalParticipation)
	}
	if rep.TotalMutual <= 0 {
		t.Fatal("no benefit accumulated")
	}
}

func TestSimulateDeterministic(t *testing.T) {
	a, err := Simulate(baseConfig(core.Greedy{Kind: core.MutualWeight}), 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Simulate(baseConfig(core.Greedy{Kind: core.MutualWeight}), 7)
	if err != nil {
		t.Fatal(err)
	}
	if a.FinalParticipation != b.FinalParticipation || a.TotalMutual != b.TotalMutual {
		t.Fatal("same-seed simulations diverged")
	}
	for i := range a.Rounds {
		if a.Rounds[i].Active != b.Rounds[i].Active {
			t.Fatalf("round %d active differs", i)
		}
	}
}

func TestSimulateParticipationMonotoneDecline(t *testing.T) {
	// No return mechanism exists, so active counts never increase.
	rep, err := Simulate(baseConfig(core.QualityOnly()), 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(rep.Rounds); i++ {
		if rep.Rounds[i].Active > rep.Rounds[i-1].Active {
			t.Fatalf("active grew: %d → %d", rep.Rounds[i-1].Active, rep.Rounds[i].Active)
		}
	}
}

func TestMutualBenefitRetainsMoreWorkersThanQualityOnly(t *testing.T) {
	// The paper's headline behavioural claim, averaged over seeds: mutual
	// benefit assignment keeps more of the workforce than quality-only.
	var mutual, quality float64
	for seed := uint64(1); seed <= 5; seed++ {
		cfgM := baseConfig(core.Greedy{Kind: core.MutualWeight})
		cfgM.Rounds = 15
		repM, err := Simulate(cfgM, seed)
		if err != nil {
			t.Fatal(err)
		}
		cfgQ := baseConfig(core.QualityOnly())
		cfgQ.Rounds = 15
		repQ, err := Simulate(cfgQ, seed)
		if err != nil {
			t.Fatal(err)
		}
		mutual += repM.FinalParticipation
		quality += repQ.FinalParticipation
	}
	if mutual <= quality {
		t.Fatalf("mutual retention %v did not beat quality-only %v", mutual, quality)
	}
}

func TestSimulateValidation(t *testing.T) {
	cfg := baseConfig(core.Greedy{})
	cfg.Rounds = 0
	if _, err := Simulate(cfg, 1); err == nil {
		t.Fatal("zero rounds accepted")
	}
	cfg = baseConfig(nil)
	if _, err := Simulate(cfg, 1); err == nil {
		t.Fatal("nil solver accepted")
	}
}

func TestSimulateWithOnlineSolver(t *testing.T) {
	rep, err := Simulate(baseConfig(core.OnlineGreedy{Kind: core.MutualWeight}), 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rounds) != 10 {
		t.Fatal("online solver simulation incomplete")
	}
}

func TestDropoutRespondsToStarvation(t *testing.T) {
	// A market with far more workers than work starves most of them; with
	// aggressive dropout settings, participation must fall visibly.
	cfg := baseConfig(core.Greedy{Kind: core.MutualWeight})
	cfg.Market = market.Config{NumWorkers: 100, NumTasks: 5}
	cfg.TasksPerRound = 5
	cfg.Rounds = 12
	cfg.MaxDropProb = 0.5
	rep, err := Simulate(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	if rep.FinalParticipation > 0.7 {
		t.Fatalf("starved market kept %v of workers", rep.FinalParticipation)
	}
}
