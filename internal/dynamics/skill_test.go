package dynamics

import (
	"testing"

	"repro/internal/core"
)

func TestSkillGrowthRaisesAccuracy(t *testing.T) {
	cfg := baseConfig(core.Greedy{Kind: core.MutualWeight})
	cfg.SkillGrowth = 0.1
	cfg.Rounds = 12
	rep, err := Simulate(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	first := rep.Rounds[0].MeanSpecAccuracy
	last := rep.Rounds[len(rep.Rounds)-1].MeanSpecAccuracy
	if last <= first {
		t.Fatalf("skill growth did not raise accuracy: %v → %v", first, last)
	}
	if last > 0.99 {
		t.Fatalf("accuracy escaped the cap: %v", last)
	}
}

func TestSkillGrowthDisabledIsStable(t *testing.T) {
	cfg := baseConfig(core.Greedy{Kind: core.MutualWeight})
	cfg.Rounds = 8
	rep, err := Simulate(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Without growth, the population's profiles never change; the mean can
	// still drift slightly because dropouts change who is averaged, so only
	// assert it stays within the workforce's plausible static band.
	for _, rr := range rep.Rounds {
		if rr.MeanSpecAccuracy < 0.5 || rr.MeanSpecAccuracy >= 1 {
			t.Fatalf("round %d implausible accuracy %v", rr.Round, rr.MeanSpecAccuracy)
		}
	}
}

func TestSkillGrowthDoesNotCorruptGeneratorBase(t *testing.T) {
	// Two simulations from the same seed, one with growth, one without,
	// must start from identical round-0 accuracy — growth must not leak
	// into the shared generated instance across runs.
	cfgA := baseConfig(core.Greedy{Kind: core.MutualWeight})
	cfgA.SkillGrowth = 0.2
	repA, err := Simulate(cfgA, 3)
	if err != nil {
		t.Fatal(err)
	}
	cfgB := baseConfig(core.Greedy{Kind: core.MutualWeight})
	repB, err := Simulate(cfgB, 3)
	if err != nil {
		t.Fatal(err)
	}
	if repA.Rounds[0].MeanSpecAccuracy != repB.Rounds[0].MeanSpecAccuracy {
		t.Fatalf("round-0 accuracy differs: %v vs %v",
			repA.Rounds[0].MeanSpecAccuracy, repB.Rounds[0].MeanSpecAccuracy)
	}
}

func TestSkillGrowthCompoundsBenefit(t *testing.T) {
	// Learning-by-doing should raise cumulative quality over a long run
	// relative to a static workforce (same seed → same arrival of tasks).
	cfgGrow := baseConfig(core.Greedy{Kind: core.MutualWeight})
	cfgGrow.SkillGrowth = 0.15
	cfgGrow.Rounds = 15
	grow, err := Simulate(cfgGrow, 4)
	if err != nil {
		t.Fatal(err)
	}
	cfgStatic := baseConfig(core.Greedy{Kind: core.MutualWeight})
	cfgStatic.Rounds = 15
	static, err := Simulate(cfgStatic, 4)
	if err != nil {
		t.Fatal(err)
	}
	if grow.TotalMutual <= static.TotalMutual {
		t.Fatalf("growth run %v did not beat static %v", grow.TotalMutual, static.TotalMutual)
	}
}
