package dynamics

import (
	"testing"

	"repro/internal/core"
)

func TestReturnsDisabledByDefault(t *testing.T) {
	rep, err := Simulate(baseConfig(core.Greedy{Kind: core.MutualWeight}), 21)
	if err != nil {
		t.Fatal(err)
	}
	for _, rr := range rep.Rounds {
		if rr.Returns != 0 {
			t.Fatalf("round %d reported returns without ReturnProb", rr.Round)
		}
	}
}

func TestReturnsRefillTheMarket(t *testing.T) {
	// With aggressive dropout and a return channel, some workers must come
	// back across a long run.
	cfg := baseConfig(core.Greedy{Kind: core.MutualWeight})
	cfg.Rounds = 20
	cfg.MaxDropProb = 0.5
	cfg.ReturnProb = 0.3
	rep, err := Simulate(cfg, 22)
	if err != nil {
		t.Fatal(err)
	}
	totalReturns := 0
	for _, rr := range rep.Rounds {
		totalReturns += rr.Returns
		if rr.Participation < 0 || rr.Participation > 1 {
			t.Fatalf("round %d participation %v", rr.Round, rr.Participation)
		}
	}
	if totalReturns == 0 {
		t.Fatal("no worker ever returned despite ReturnProb")
	}
}

func TestReturnsRaiseSteadyStateParticipation(t *testing.T) {
	noReturn := baseConfig(core.Greedy{Kind: core.MutualWeight})
	noReturn.Rounds = 20
	repA, err := Simulate(noReturn, 23)
	if err != nil {
		t.Fatal(err)
	}
	withReturn := noReturn
	withReturn.ReturnProb = 0.25
	repB, err := Simulate(withReturn, 23)
	if err != nil {
		t.Fatal(err)
	}
	if repB.FinalParticipation <= repA.FinalParticipation {
		t.Fatalf("returns did not raise participation: %v vs %v",
			repB.FinalParticipation, repA.FinalParticipation)
	}
}

func TestReturnsParticipationCanRecover(t *testing.T) {
	// With returns enabled, the monotone-decline invariant of the default
	// model no longer holds — participation must rise at least once in a
	// long, churny run.
	cfg := baseConfig(core.Greedy{Kind: core.MutualWeight})
	cfg.Rounds = 25
	cfg.MaxDropProb = 0.5
	cfg.ReturnProb = 0.4
	rep, err := Simulate(cfg, 24)
	if err != nil {
		t.Fatal(err)
	}
	rose := false
	for i := 1; i < len(rep.Rounds); i++ {
		if rep.Rounds[i].Active > rep.Rounds[i-1].Active {
			rose = true
			break
		}
	}
	if !rose {
		t.Fatal("participation never recovered despite heavy returns")
	}
}
