package experiments

import (
	"fmt"
	"io"
	"strings"
	"text/tabwriter"
)

// table accumulates aligned rows and flushes them via text/tabwriter, so
// every experiment's output looks like the paper's tables.
type table struct {
	tw *tabwriter.Writer
}

// newTable starts a table on w with the given column headers.
func newTable(w io.Writer, headers ...string) *table {
	tw := tabwriter.NewWriter(w, 0, 4, 2, ' ', 0)
	t := &table{tw: tw}
	fmt.Fprintln(tw, strings.Join(headers, "\t"))
	rule := make([]string, len(headers))
	for i, h := range headers {
		rule[i] = strings.Repeat("-", len(h))
	}
	fmt.Fprintln(tw, strings.Join(rule, "\t"))
	return t
}

// row appends one row; cells are formatted with %v unless already strings.
func (t *table) row(cells ...interface{}) {
	parts := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			parts[i] = v
		case float64:
			parts[i] = fmt.Sprintf("%.4f", v)
		default:
			parts[i] = fmt.Sprintf("%v", v)
		}
	}
	fmt.Fprintln(t.tw, strings.Join(parts, "\t"))
}

// flush renders the accumulated table.
func (t *table) flush() error { return t.tw.Flush() }

// f2 formats a float with two decimals (benefit totals).
func f2(x float64) string { return fmt.Sprintf("%.2f", x) }

// f3 formats a float with three decimals (ratios, fairness).
func f3(x float64) string { return fmt.Sprintf("%.3f", x) }

// pm formats mean ± half-CI.
func pm(mean, ci float64) string { return fmt.Sprintf("%.2f±%.2f", mean, ci) }
