package experiments

// The "ingest" suite: sustained journaled event throughput through the
// platform write path, across the encodings and batching strategies the
// ingestion tentpole added.  Four pipelines:
//
//   - "json-single":   one JSONL append + (policy) fsync per event — the
//     pre-tentpole baseline.
//   - "binary-single":  the binary record format with the group committer
//     on, still one caller, so the entry isolates the encoding win.
//   - "binary-group-parallel": GOMAXPROCS goroutines appending binary
//     records concurrently — the group committer coalesces their flushes,
//     so this is the fsync-amortisation win for concurrent writers.
//   - "binary-batch100": the POST /v1/batch backend path, 100 events per
//     all-or-nothing SubmitBatch — one journal append and one fsync per
//     hundred events.
//
// Every pipeline runs under FsyncNever and FsyncAlways; ns/op is per
// *event* in all entries (events/sec = 1e9 / ns_per_op), so the
// FsyncAlways rows are directly comparable: the ≥10× acceptance headline
// is binary-batch100/fsync-always vs json-single/fsync-always.  Checked
// in as BENCH_ingest.json and gated by `mbabench -benchdiff` like the
// other suites.
//
// The workload is bounded churn, not unbounded growth: after an off-clock
// seeding phase the event stream cycles join → post → leave-oldest →
// close-oldest, so the live market keeps a constant size no matter how
// many iterations the benchmark settles on, and removals always name
// entities whose IDs a previous (already journaled) event assigned.

import (
	"fmt"
	"io"
	"os"
	"testing"

	"repro/internal/benefit"
	"repro/internal/core"
	"repro/internal/market"
	"repro/internal/platform"
)

// ingestSeedPool is how many workers and tasks the off-clock seeding
// phase creates: large enough that batch-mode removals (≤25 per batch of
// 100) never drain the pool before the batch's own joins refill it.
const ingestSeedPool = 256

// ingestScale tags the suite's entries; the workload is a stream, not a
// fixed market, so the conventional workers/tasks columns record the
// steady-state pool size.
func ingestScale() BenchScale {
	return BenchScale{Name: "stream", Workers: ingestSeedPool, Tasks: ingestSeedPool}
}

// ingestChurn generates the bounded-churn event stream.  Removals pop the
// oldest live ID; push is called with the IDs the platform assigned so
// prediction never enters into it.
type ingestChurn struct {
	templates *market.Instance
	i         int
	workers   []int // FIFO of live worker IDs
	tasks     []int // FIFO of live task IDs
}

func newIngestChurn(seed uint64) (*ingestChurn, error) {
	in, err := market.Generate(market.FreelanceTraceConfig(ingestSeedPool, ingestSeedPool), seed)
	if err != nil {
		return nil, err
	}
	return &ingestChurn{templates: in}, nil
}

func (c *ingestChurn) worker() market.Worker {
	w := c.templates.Workers[c.i%len(c.templates.Workers)]
	w.ID = 0 // platform-assigned
	return w
}

func (c *ingestChurn) task() market.Task {
	t := c.templates.Tasks[c.i%len(c.templates.Tasks)]
	t.ID = 0
	return t
}

// next returns the next event of the cycle.  It must be paired with
// absorb() on the applied result so the FIFOs track real IDs.
func (c *ingestChurn) next() platform.Event {
	defer func() { c.i++ }()
	switch c.i % 4 {
	case 0:
		return platform.NewWorkerJoined(c.worker())
	case 1:
		return platform.NewTaskPosted(c.task())
	case 2:
		id := c.workers[0]
		c.workers = c.workers[1:]
		return platform.NewWorkerLeft(id)
	default:
		id := c.tasks[0]
		c.tasks = c.tasks[1:]
		return platform.NewTaskClosed(id)
	}
}

// absorb records the IDs the platform assigned to applied add events.
func (c *ingestChurn) absorb(applied []platform.Event) {
	for i := range applied {
		switch {
		case applied[i].Worker != nil:
			c.workers = append(c.workers, applied[i].Worker.ID)
		case applied[i].Task != nil:
			c.tasks = append(c.tasks, applied[i].Task.ID)
		}
	}
}

// newIngestService opens a segmented journal in its own temp directory
// and seeds the churn pool off-clock.
func newIngestService(cfg BenchConfig, opts platform.LogOptions) (*platform.Service, *ingestChurn, func(), error) {
	dir, err := os.MkdirTemp("", "mba-ingest-*")
	if err != nil {
		return nil, nil, nil, err
	}
	cleanup := func() { os.RemoveAll(dir) }
	sl, err := platform.OpenSegmentedLog(dir, platform.SegmentOptions{
		MaxBytes: 64 << 20,
		Log:      opts,
	})
	if err != nil {
		cleanup()
		return nil, nil, nil, err
	}
	state, err := platform.NewState(sampleCategories(cfg))
	if err != nil {
		cleanup()
		return nil, nil, nil, err
	}
	svc, err := platform.NewService(state, core.Greedy{Kind: core.MutualWeight, WS: &core.Workspace{}},
		benefit.DefaultParams(), sl, cfg.Seed)
	if err != nil {
		cleanup()
		return nil, nil, nil, err
	}
	churn, err := newIngestChurn(cfg.Seed)
	if err != nil {
		cleanup()
		return nil, nil, nil, err
	}
	closer := func() {
		sl.Close()
		cleanup()
	}
	// Seed the removal pool so the churn cycle can never underflow.
	var batch []platform.Event
	for i := 0; i < ingestSeedPool; i++ {
		batch = append(batch, platform.NewWorkerJoined(churn.worker()), platform.NewTaskPosted(churn.task()))
	}
	applied, err := svc.SubmitBatch(batch)
	if err != nil {
		closer()
		return nil, nil, nil, err
	}
	churn.absorb(applied)
	return svc, churn, closer, nil
}

// sampleCategories reads the category universe off the generated
// workload so state and templates always agree.
func sampleCategories(cfg BenchConfig) int {
	in, err := market.Generate(market.FreelanceTraceConfig(8, 8), cfg.Seed)
	if err != nil {
		return 8
	}
	return in.NumCategories
}

// runIngestSuite measures the four ingestion pipelines under both fsync
// policies.  Per-event ns/op everywhere.
func runIngestSuite(log io.Writer, cfg BenchConfig, rep *BenchReport) error {
	sc := ingestScale()
	fsyncs := []struct {
		name   string
		policy platform.FsyncPolicy
	}{
		{"fsync-never", platform.FsyncNever},
		{"fsync-always", platform.FsyncAlways},
	}
	type mode struct {
		name   string
		format platform.JournalFormat
		group  bool
		batch  int
	}
	modes := []mode{
		{"json-single", platform.FormatJSONL, false, 1},
		{"binary-single", platform.FormatBinary, true, 1},
		{"binary-batch100", platform.FormatBinary, true, 100},
	}
	for _, fs := range fsyncs {
		add := benchAdder(log, rep, "ingest", sc, 0)
		for _, m := range modes {
			opts := platform.LogOptions{Format: m.format, GroupCommit: m.group, Fsync: fs.policy}
			svc, churn, closer, err := newIngestService(cfg, opts)
			if err != nil {
				return err
			}
			name := m.name + "/" + fs.name
			var benchErr error
			br := testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				if m.batch <= 1 {
					for i := 0; i < b.N; i++ {
						applied, err := svc.Submit(churn.next())
						if err != nil {
							benchErr = err
							b.Fatal(err)
						}
						churn.absorb([]platform.Event{applied})
					}
					return
				}
				pending := make([]platform.Event, 0, m.batch)
				flush := func() {
					applied, err := svc.SubmitBatch(pending)
					if err != nil {
						benchErr = err
						b.Fatal(err)
					}
					churn.absorb(applied)
					pending = pending[:0]
				}
				for i := 0; i < b.N; i++ {
					pending = append(pending, churn.next())
					if len(pending) == m.batch {
						flush()
					}
				}
				if len(pending) > 0 {
					flush()
				}
			})
			closer()
			if benchErr != nil {
				return fmt.Errorf("experiments: ingest %s: %w", name, benchErr)
			}
			add(name, br)
		}

		// Concurrent appenders against the journal itself: the group
		// committer folds concurrent writers into shared flushes, which is
		// where group commit (as opposed to batching) pays off.  Pinned to
		// 8 appender goroutines per processor so the entry measures
		// coalescing even on single-CPU runners.
		dir, err := os.MkdirTemp("", "mba-ingest-*")
		if err != nil {
			return err
		}
		sl, err := platform.OpenSegmentedLog(dir, platform.SegmentOptions{
			MaxBytes: 64 << 20,
			Log:      platform.LogOptions{Format: platform.FormatBinary, GroupCommit: true, Fsync: fs.policy},
		})
		if err != nil {
			os.RemoveAll(dir)
			return err
		}
		churn, err := newIngestChurn(cfg.Seed)
		if err != nil {
			sl.Close()
			os.RemoveAll(dir)
			return err
		}
		ev := platform.NewWorkerJoined(churn.worker()) // Seq 0: order-free append
		var benchErr error
		br := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			b.SetParallelism(8)
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					if err := sl.Append(ev); err != nil {
						benchErr = err
						b.Fatal(err)
					}
				}
			})
		})
		sl.Close()
		os.RemoveAll(dir)
		if benchErr != nil {
			return fmt.Errorf("experiments: ingest binary-group-parallel/%s: %w", fs.name, benchErr)
		}
		add("binary-group-parallel/"+fs.name, br)
	}
	return nil
}
