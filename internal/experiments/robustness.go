package experiments

// Robustness experiments (X-Rob*): measurements of the serving stack's
// graceful-degradation behaviour rather than paper reconstructions.  They
// follow the same runner contract as everything else so cmd/mbabench
// regenerates them uniformly.

import (
	"fmt"
	"io"
	"time"

	"repro/internal/benefit"
	"repro/internal/core"
	"repro/internal/market"
	"repro/internal/stats"
)

func init() {
	register(Experiment{
		ID:    "X-Rob1",
		Title: "graceful degradation: solution quality vs. round deadline",
		Expected: "with a generous deadline the degrader serves the exact optimum; as the deadline " +
			"shrinks below the exact solver's needs it degrades to local-search and finally greedy, " +
			"trading a bounded few percent of mutual benefit for a bounded round time — quality " +
			"falls in steps (one per chain stage), never to zero",
		Run: runRob1,
	})
}

func runRob1(w io.Writer, cfg RunConfig) error {
	nw, nt := cfg.pick(400, 60), cfg.pick(300, 45)
	in, err := market.Generate(market.FreelanceTraceConfig(nw, nt), cfg.Seed)
	if err != nil {
		return err
	}
	p, err := core.NewProblem(in, benefit.DefaultParams())
	if err != nil {
		return err
	}

	// Calibrate: the unconstrained exact solve's value and wall time are
	// the yardstick every deadline is expressed against.
	_, opt, err := core.Run(p, core.Exact{Kind: core.MutualWeight}, stats.NewRNG(cfg.Seed))
	if err != nil {
		return err
	}
	exactTime := opt.Elapsed
	if exactTime <= 0 {
		exactTime = time.Millisecond
	}
	fmt.Fprintf(w, "exact solve: %s for mutual %.2f (deadlines below are multiples of it)\n",
		exactTime.Round(time.Microsecond), opt.TotalMutual)

	t := newTable(w, "deadline", "served-by", "degraded", "timed-out", "ratio-vs-exact", "round-time")
	for _, mult := range []float64{4, 1, 0.5, 0.125, 0.015625} {
		deadline := time.Duration(float64(exactTime) * mult)
		if deadline <= 0 {
			deadline = time.Microsecond
		}
		d := core.NewDegrader(deadline,
			core.Exact{Kind: core.MutualWeight},
			core.LocalSearch{Kind: core.MutualWeight},
			core.Greedy{Kind: core.MutualWeight},
		)
		start := time.Now()
		_, m, err := core.Run(p, d, stats.NewRNG(cfg.Seed))
		elapsed := time.Since(start)
		if err != nil {
			return err
		}
		rep := d.LastReport()
		degraded := "-"
		if rep.DegradedFrom != "" {
			degraded = "from " + rep.DegradedFrom
		}
		t.row(fmt.Sprintf("%gx", mult), rep.ServedBy, degraded,
			fmt.Sprintf("%v", rep.SolveTimedOut),
			f3(m.TotalMutual/opt.TotalMutual),
			elapsed.Round(time.Microsecond).String())
	}
	return t.flush()
}
