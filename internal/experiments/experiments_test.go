package experiments

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
)

// fmtSscan is a tiny alias so the parse helper reads naturally.
func fmtSscan(s string, v *float64) (int, error) { return fmt.Sscan(s, v) }

func quickCfg() RunConfig { return RunConfig{Seed: 1, Quick: true, Reps: 2} }

func TestRegistryComplete(t *testing.T) {
	// DESIGN.md §7 lists exactly these experiments; the registry must match.
	want := []string{
		"R-Fig10", "R-Fig11", "R-Fig12", "R-Fig13",
		"R-Fig4", "R-Fig5", "R-Fig6", "R-Fig7", "R-Fig8", "R-Fig9",
		"R-Tab1", "R-Tab2", "R-Tab3", "R-Tab4",
		"X-Abl1", "X-Abl2", "X-Abl3", "X-Abl4", "X-Abl5", "X-Abl6", "X-Abl7", "X-Abl8",
		"X-Abl9", "X-Rob1", "X-Rob2",
	}
	all := All()
	if len(all) != len(want) {
		t.Fatalf("registry has %d experiments, want %d", len(all), len(want))
	}
	for i, e := range all {
		if e.ID != want[i] {
			t.Fatalf("position %d: %s, want %s", i, e.ID, want[i])
		}
		if e.Title == "" || e.Expected == "" || e.Run == nil {
			t.Fatalf("%s incomplete", e.ID)
		}
	}
}

func TestByID(t *testing.T) {
	if _, err := ByID("R-Tab1"); err != nil {
		t.Fatal(err)
	}
	if _, err := ByID("R-Fig99"); err == nil {
		t.Fatal("unknown id accepted")
	}
}

// Every experiment must run end to end at quick scale and produce a table.
func TestAllExperimentsRunQuick(t *testing.T) {
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			t.Parallel()
			var buf bytes.Buffer
			if err := e.Run(&buf, quickCfg()); err != nil {
				t.Fatal(err)
			}
			out := buf.String()
			if len(out) == 0 {
				t.Fatal("no output")
			}
			if !strings.Contains(out, "-") { // header rule
				t.Fatalf("no table detected:\n%s", out)
			}
		})
	}
}

func TestRunOneHeaderAndExpectation(t *testing.T) {
	e, err := ByID("R-Tab1")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := RunOne(&buf, e, quickCfg()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "==== R-Tab1") || !strings.Contains(out, "expected shape:") {
		t.Fatalf("missing framing:\n%s", out)
	}
}

func TestExperimentsDeterministic(t *testing.T) {
	e, err := ByID("R-Tab2")
	if err != nil {
		t.Fatal(err)
	}
	var a, b bytes.Buffer
	cfg := quickCfg()
	if err := e.Run(&a, cfg); err != nil {
		t.Fatal(err)
	}
	if err := e.Run(&b, cfg); err != nil {
		t.Fatal(err)
	}
	// Strip the timing column, which legitimately varies between runs.
	normalize := func(s string) string {
		var out []string
		for _, line := range strings.Split(s, "\n") {
			cols := strings.Fields(line)
			if len(cols) > 1 {
				cols = cols[:len(cols)-1]
			}
			out = append(out, strings.Join(cols, " "))
		}
		return strings.Join(out, "\n")
	}
	if normalize(a.String()) != normalize(b.String()) {
		t.Fatalf("same seed, different output:\n%s\nvs\n%s", a.String(), b.String())
	}
}

func TestHeadlineShapeHolds(t *testing.T) {
	// Parse R-Tab2 quick output and assert the paper's core ordering: the
	// mutual-benefit exact solver beats quality-only on mutual benefit, and
	// quality-only beats exact on quality.
	e, _ := ByID("R-Tab2")
	var buf bytes.Buffer
	if err := e.Run(&buf, RunConfig{Seed: 3, Quick: true, Reps: 2}); err != nil {
		t.Fatal(err)
	}
	var exactMutual, qoMutual, exactQuality, qoQuality float64
	for _, line := range strings.Split(buf.String(), "\n") {
		cols := strings.Fields(line)
		if len(cols) < 4 {
			continue
		}
		parse := func(s string) float64 {
			// mutual column renders as mean±ci.
			if i := strings.IndexRune(s, '±'); i >= 0 {
				s = s[:i]
			}
			var v float64
			if _, err := fmtSscan(s, &v); err != nil {
				return -1
			}
			return v
		}
		switch cols[0] {
		case "exact":
			exactMutual = parse(cols[1])
			exactQuality = parse(cols[2])
		case "quality-only":
			qoMutual = parse(cols[1])
			qoQuality = parse(cols[2])
		}
	}
	if exactMutual <= 0 || qoMutual <= 0 {
		t.Fatalf("failed to parse table:\n%s", buf.String())
	}
	if exactMutual <= qoMutual {
		t.Fatalf("exact mutual %v did not beat quality-only %v", exactMutual, qoMutual)
	}
	if qoQuality < exactQuality {
		t.Fatalf("quality-only quality %v below exact %v", qoQuality, exactQuality)
	}
}
