package experiments

import (
	"time"

	"repro/internal/benefit"
	"repro/internal/core"
	"repro/internal/market"
	"repro/internal/stats"
)

// repeatMetrics runs solver on reps instances drawn from cfg with seeds
// seed, seed+1, … and returns the per-rep metrics.  Each rep builds a fresh
// instance so the confidence intervals reflect workload variance, exactly
// like repeated trials in the paper's evaluation.
func repeatMetrics(cfg market.Config, params benefit.Params, solver core.Solver, seed uint64, reps int) ([]core.Metrics, error) {
	out := make([]core.Metrics, 0, reps)
	for rep := 0; rep < reps; rep++ {
		s := seed + uint64(rep)
		in, err := market.Generate(cfg, s)
		if err != nil {
			return nil, err
		}
		p, err := core.NewProblem(in, params)
		if err != nil {
			return nil, err
		}
		_, m, err := core.Run(p, solver, stats.NewRNG(s))
		if err != nil {
			return nil, err
		}
		out = append(out, m)
	}
	return out, nil
}

// meanMetrics averages the numeric fields of ms.
func meanMetrics(ms []core.Metrics) core.Metrics {
	if len(ms) == 0 {
		return core.Metrics{}
	}
	var avg core.Metrics
	avg.Algorithm = ms[0].Algorithm
	n := float64(len(ms))
	for _, m := range ms {
		avg.Pairs += m.Pairs
		avg.TotalMutual += m.TotalMutual
		avg.TotalQuality += m.TotalQuality
		avg.TotalWorker += m.TotalWorker
		avg.SlotCoverage += m.SlotCoverage
		avg.WorkerJain += m.WorkerJain
		avg.MeanWorkerBenefit += m.MeanWorkerBenefit
		avg.ActiveWorkers += m.ActiveWorkers
		avg.Elapsed += m.Elapsed
	}
	avg.Pairs = int(float64(avg.Pairs)/n + 0.5)
	avg.TotalMutual /= n
	avg.TotalQuality /= n
	avg.TotalWorker /= n
	avg.SlotCoverage /= n
	avg.WorkerJain /= n
	avg.MeanWorkerBenefit /= n
	avg.ActiveWorkers = int(float64(avg.ActiveWorkers)/n + 0.5)
	avg.Elapsed /= time.Duration(len(ms))
	return avg
}

// mutualValues extracts TotalMutual per rep (for CI reporting).
func mutualValues(ms []core.Metrics) []float64 {
	out := make([]float64, len(ms))
	for i, m := range ms {
		out[i] = m.TotalMutual
	}
	return out
}
