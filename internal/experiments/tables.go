package experiments

import (
	"fmt"
	"io"

	"repro/internal/benefit"
	"repro/internal/core"
	"repro/internal/market"
	"repro/internal/stats"
)

func init() {
	register(Experiment{
		ID:    "R-Tab1",
		Title: "dataset statistics of the four workloads",
		Expected: "freelance: high prices, low replication; microtask: many slots, low prices; " +
			"zipf concentrates edges relative to uniform",
		Run: runTab1,
	})
	register(Experiment{
		ID:    "R-Tab2",
		Title: "headline comparison of all algorithms on the freelance trace",
		Expected: "exact/greedy/local-search lead on mutual benefit; quality-only wins requester " +
			"quality but collapses worker benefit and fairness; random/round-robin trail everywhere",
		Run: runTab2,
	})
	register(Experiment{
		ID:    "R-Tab3",
		Title: "mutual-benefit combiner ablation (weighted-sum / nash-product / egalitarian)",
		Expected: "nash and egalitarian shift the optimum toward balanced pairs: lower quality sum, " +
			"higher minimum-side benefit and fairness than weighted-sum",
		Run: runTab3,
	})
}

func runTab1(w io.Writer, cfg RunConfig) error {
	nw := cfg.pick(1000, 100)
	nt := cfg.pick(800, 80)
	workloads := []market.Config{
		market.UniformConfig(nw, nt),
		market.ZipfConfig(nw, nt, 1.2),
		market.FreelanceTraceConfig(nw, nt),
		market.MicrotaskTraceConfig(nw, nt),
	}
	t := newTable(w, "workload", "workers", "tasks", "cats", "edges", "slots", "capacity", "mean-pay", "mean-acc")
	for _, wl := range workloads {
		in, err := market.Generate(wl, cfg.Seed)
		if err != nil {
			return err
		}
		s := in.ComputeStats()
		t.row(s.Name, s.Workers, s.Tasks, s.Categories, s.Edges, s.TotalSlots, s.TotalCapacity,
			f2(s.MeanPayment), f3(s.MeanAccuracy))
	}
	return t.flush()
}

func runTab2(w io.Writer, cfg RunConfig) error {
	mcfg := market.FreelanceTraceConfig(cfg.pick(600, 80), cfg.pick(400, 60))
	reps := cfg.reps(3)
	t := newTable(w, "algorithm", "mutual±ci", "quality", "worker", "coverage", "jain", "active", "time")
	for _, s := range core.ComparisonSolvers() {
		ms, err := repeatMetrics(mcfg, benefit.DefaultParams(), s, cfg.Seed, reps)
		if err != nil {
			return err
		}
		avg := meanMetrics(ms)
		vals := mutualValues(ms)
		t.row(s.Name(), pm(stats.Mean(vals), stats.CI95(vals)), f2(avg.TotalQuality), f2(avg.TotalWorker),
			f3(avg.SlotCoverage), f3(avg.WorkerJain), avg.ActiveWorkers, avg.Elapsed.String())
	}
	return t.flush()
}

func runTab3(w io.Writer, cfg RunConfig) error {
	mcfg := market.FreelanceTraceConfig(cfg.pick(400, 80), cfg.pick(300, 60))
	reps := cfg.reps(3)
	combiners := []benefit.Combiner{benefit.WeightedSum, benefit.NashProduct, benefit.Egalitarian}
	t := newTable(w, "combiner", "objective", "quality", "worker", "jain", "min-side-gap")
	for _, c := range combiners {
		params := benefit.Params{Lambda: 0.5, Beta: 0.5, Combiner: c}
		var obj, q, b, jain, gap float64
		for rep := 0; rep < reps; rep++ {
			seed := cfg.Seed + uint64(rep)
			in, err := market.Generate(mcfg, seed)
			if err != nil {
				return err
			}
			p, err := core.NewProblem(in, params)
			if err != nil {
				return err
			}
			sel, m, err := core.Run(p, core.Exact{Kind: core.MutualWeight}, stats.NewRNG(seed))
			if err != nil {
				return err
			}
			obj += m.TotalMutual
			q += m.TotalQuality
			b += m.TotalWorker
			jain += m.WorkerJain
			// Mean per-pair |q − b| gap: combiners that punish one-sided
			// pairs should shrink it.
			var g float64
			for _, ei := range sel {
				e := &p.Edges[ei]
				d := e.Q - e.B
				if d < 0 {
					d = -d
				}
				g += d
			}
			if len(sel) > 0 {
				gap += g / float64(len(sel))
			}
		}
		n := float64(reps)
		t.row(c.String(), f2(obj/n), f2(q/n), f2(b/n), f3(jain/n), f3(gap/n))
	}
	if err := t.flush(); err != nil {
		return err
	}
	fmt.Fprintln(w, "objective column is each combiner's own optimum (not cross-comparable across rows)")
	return nil
}
