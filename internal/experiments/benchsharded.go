package experiments

// The "sharded-round" benchmark suite: end-to-end platform rounds over a
// platform.ShardedService at 1/2/4/8 shards, same workload, same solver.
// Checked in as BENCH_sharded.json and gated by `mbabench -benchdiff`.
//
// What the suite demonstrates is algorithmic, not just parallel: the exact
// min-cost-flow solver is super-linear in the subproblem size, so cutting
// one market into S category-disjoint shard markets makes the summed solve
// work strictly smaller — S shards are faster than one even on GOMAXPROCS=1,
// and concurrency on bigger machines stacks on top.  The workload spreads
// tasks uniformly over 64 categories (balanced shards) with 1–2 specialties
// per worker, so roughly half the workers span shards and the
// reconciliation pass stays on the measured path.

import (
	"fmt"
	"io"
	"testing"

	"repro/internal/benefit"
	"repro/internal/core"
	"repro/internal/market"
	"repro/internal/platform"
)

// shardedBenchCategories sizes the category universe of the suite's
// workload; 64 categories keep 8 shards balanced (8 categories each).
const shardedBenchCategories = 64

// shardedBenchShardCounts is the partitioning ladder each scale runs.
var shardedBenchShardCounts = []int{1, 2, 4, 8}

// ShardedRoundBenchScales returns the two market sizes of the suite.  "lg"
// is the headline scale of the ≥4× rounds/sec acceptance target; both stay
// below where the 1-shard exact solve would dominate the harness's wall
// clock.
func ShardedRoundBenchScales() []BenchScale {
	return []BenchScale{
		{Name: "md", Workers: 1600, Tasks: 1200},
		{Name: "lg", Workers: 3200, Tasks: 2400},
	}
}

// shardedBenchInstance generates the suite's workload: uniform category
// popularity (balanced shards) and 1–2 specialties per worker, so spanning
// workers — the reconciliation load — are about half the workforce.
func shardedBenchInstance(sc BenchScale, seed uint64) (*market.Instance, error) {
	return market.Generate(market.Config{
		Name:           "sharded-bench",
		NumWorkers:     sc.Workers,
		NumTasks:       sc.Tasks,
		NumCategories:  shardedBenchCategories,
		MinSpecialties: 1,
		MaxSpecialties: 2,
	}, seed)
}

// newBenchShardedService assembles an S-shard in-memory service (no
// journals, no checkpoints — the suite isolates the round protocol from
// disk I/O, like the "round" suite) and loads the full workload through the
// routing layer.
func newBenchShardedService(in *market.Instance, shards int, solverName string, seed uint64) (*platform.ShardedService, error) {
	bundles := make([]platform.Shard, shards)
	for k := range bundles {
		state, err := platform.NewState(in.NumCategories)
		if err != nil {
			return nil, err
		}
		solver, err := benchRoundSolver(solverName)
		if err != nil {
			return nil, err
		}
		bundles[k] = platform.Shard{State: state, Solver: solver}
	}
	ss, err := platform.NewShardedService(bundles, benefit.DefaultParams(), platform.ShardedOptions{}, seed)
	if err != nil {
		return nil, err
	}
	// Blank the generator's dense 0-based IDs so the service hands out its
	// own (a submitted non-zero ID is replay semantics, not a request).
	for _, w := range in.Workers {
		w.ID = 0
		if _, err := ss.Submit(platform.NewWorkerJoined(w)); err != nil {
			return nil, err
		}
	}
	for _, t := range in.Tasks {
		t.ID = 0
		if _, err := ss.Submit(platform.NewTaskPosted(t)); err != nil {
			return nil, err
		}
	}
	return ss, nil
}

// benchBestOf runs a benchmark n times and keeps the fastest sample.  The
// single-shard rungs take seconds per round, so one testing.Benchmark call
// yields b.N == 1 — a single sample whose noise can trip the 25% bench-diff
// gate.  Min-of-n matches the gate's own best-of-two philosophy: noise only
// inflates timings, so the minimum is the best estimate of true cost.
func benchBestOf(n int, f func(*testing.B)) testing.BenchmarkResult {
	best := testing.Benchmark(f)
	for i := 1; i < n; i++ {
		if r := testing.Benchmark(f); r.NsPerOp() < best.NsPerOp() {
			best = r
		}
	}
	return best
}

// runShardedRoundSuite times CloseRound at each rung of the shard ladder.
// Entries are named close-round/shards=N; rounds/sec scaling across N at a
// fixed scale is the suite's headline, ns/op regressions per entry are what
// the bench-diff gate watches.
func runShardedRoundSuite(log io.Writer, cfg BenchConfig, rep *BenchReport) error {
	scales := cfg.Scales
	if len(scales) == 0 {
		scales = ShardedRoundBenchScales()
	}
	solverName := cfg.RoundSolver
	if solverName == "" {
		solverName = "exact"
	}
	for _, sc := range scales {
		in, err := shardedBenchInstance(sc, cfg.Seed)
		if err != nil {
			return err
		}
		// Edge count reported for the scale is the whole market's; each
		// shard solves a category-disjoint slice of exactly these edges.
		p, err := core.NewProblem(in, benefit.DefaultParams())
		if err != nil {
			return err
		}
		add := benchAdder(log, rep, "sharded-round", sc, len(p.Edges))
		for _, shards := range shardedBenchShardCounts {
			ss, err := newBenchShardedService(in, shards, solverName, cfg.Seed)
			if err != nil {
				return err
			}
			// Warm-up round: pays per-shard arena allocation and (for dual-
			// carrying solvers) the first cold solve, so the entry measures
			// the steady serving state.
			if _, err := ss.CloseRound(); err != nil {
				return err
			}
			add(fmt.Sprintf("close-round/shards=%d", shards), benchBestOf(3, func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := ss.CloseRound(); err != nil {
						b.Fatal(err)
					}
				}
			}))
		}
	}
	return nil
}
