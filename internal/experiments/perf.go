package experiments

import (
	"io"
	"time"

	"repro/internal/benefit"
	"repro/internal/core"
	"repro/internal/market"
	"repro/internal/stats"
)

func init() {
	register(Experiment{
		ID:    "R-Fig9",
		Title: "runtime scalability (wall clock vs. edge count)",
		Expected: "exact grows super-linearly and is dropped past its edge budget; greedy and " +
			"quality-only stay near-linear up to a million edges — the practical crossover that motivates the heuristics",
		Run: runFig9,
	})
	register(Experiment{
		ID:    "R-Fig10",
		Title: "optimality ratio of the heuristics vs. the exact optimum",
		Expected: "greedy ≥ 0.9 in practice (far above its 0.5 bound), local-search closes most of " +
			"the remaining gap, auction is ε-exact on matching instances, random trails",
		Run: runFig10,
	})
}

func runFig9(w io.Writer, cfg RunConfig) error {
	type point struct{ nw, nt int }
	var pts []point
	if cfg.Quick {
		pts = []point{{50, 40}, {100, 80}, {200, 160}}
	} else {
		pts = []point{{200, 150}, {400, 300}, {800, 600}, {1600, 1200}, {3200, 2400}, {6400, 4800}}
	}
	exactEdgeBudget := cfg.pick(60000, 4000)

	t := newTable(w, "workers", "tasks", "edges", "exact", "local-search", "greedy", "quality-only")
	for _, pt := range pts {
		in, err := market.Generate(market.FreelanceTraceConfig(pt.nw, pt.nt), cfg.Seed)
		if err != nil {
			return err
		}
		p, err := core.NewProblem(in, benefit.DefaultParams())
		if err != nil {
			return err
		}
		timing := func(s core.Solver) (time.Duration, error) {
			_, m, err := core.Run(p, s, stats.NewRNG(cfg.Seed))
			return m.Elapsed, err
		}
		exactCell := "skipped"
		if len(p.Edges) <= exactEdgeBudget {
			d, err := timing(core.Exact{Kind: core.MutualWeight})
			if err != nil {
				return err
			}
			exactCell = d.Round(time.Microsecond).String()
		}
		// Local search's exchange passes are super-linear in edges too; it
		// gets a (larger) budget of its own before being dropped.
		lsCell := "skipped"
		if len(p.Edges) <= 40*exactEdgeBudget {
			d, err := timing(core.LocalSearch{Kind: core.MutualWeight})
			if err != nil {
				return err
			}
			lsCell = d.Round(time.Microsecond).String()
		}
		dG, err := timing(core.Greedy{Kind: core.MutualWeight})
		if err != nil {
			return err
		}
		dQ, err := timing(core.QualityOnly())
		if err != nil {
			return err
		}
		t.row(pt.nw, pt.nt, len(p.Edges), exactCell, lsCell,
			dG.Round(time.Microsecond).String(),
			dQ.Round(time.Microsecond).String())
	}
	return t.flush()
}

func runFig10(w io.Writer, cfg RunConfig) error {
	reps := cfg.reps(5)
	nw, nt := cfg.pick(200, 50), cfg.pick(150, 40)

	// General (b-matching) instances.
	general := []core.Solver{
		core.Greedy{Kind: core.MutualWeight},
		core.LocalSearch{Kind: core.MutualWeight},
		core.SubmodularGreedy{},
		core.Random{},
		core.RoundRobin{},
	}
	t := newTable(w, "instance", "algorithm", "ratio-vs-exact")
	ratios := make(map[string]*stats.Running)
	for rep := 0; rep < reps; rep++ {
		seed := cfg.Seed + uint64(rep)
		in, err := market.Generate(market.FreelanceTraceConfig(nw, nt), seed)
		if err != nil {
			return err
		}
		p, err := core.NewProblem(in, benefit.DefaultParams())
		if err != nil {
			return err
		}
		_, opt, err := core.Run(p, core.Exact{Kind: core.MutualWeight}, stats.NewRNG(seed))
		if err != nil {
			return err
		}
		for _, s := range general {
			_, m, err := core.Run(p, s, stats.NewRNG(seed))
			if err != nil {
				return err
			}
			if ratios[s.Name()] == nil {
				ratios[s.Name()] = stats.NewRunning()
			}
			ratios[s.Name()].Add(m.TotalMutual / opt.TotalMutual)
		}
	}
	for _, s := range general {
		t.row("b-matching", s.Name(), f3(ratios[s.Name()].Mean()))
	}

	// Unit-capacity (matching) instances: the auction joins the line-up.
	unit := []core.Solver{
		core.Auction{Kind: core.MutualWeight},
		core.Greedy{Kind: core.MutualWeight},
		core.LocalSearch{Kind: core.MutualWeight},
	}
	unitRatios := make(map[string]*stats.Running)
	for rep := 0; rep < reps; rep++ {
		seed := cfg.Seed + 1000 + uint64(rep)
		mc := market.UniformConfig(nw, nt)
		mc.MinCapacity, mc.MaxCapacity = 1, 1
		mc.MinReplication, mc.MaxReplication = 1, 1
		in, err := market.Generate(mc, seed)
		if err != nil {
			return err
		}
		p, err := core.NewProblem(in, benefit.DefaultParams())
		if err != nil {
			return err
		}
		_, opt, err := core.Run(p, core.Exact{Kind: core.MutualWeight}, stats.NewRNG(seed))
		if err != nil {
			return err
		}
		for _, s := range unit {
			_, m, err := core.Run(p, s, stats.NewRNG(seed))
			if err != nil {
				return err
			}
			if unitRatios[s.Name()] == nil {
				unitRatios[s.Name()] = stats.NewRunning()
			}
			unitRatios[s.Name()].Add(m.TotalMutual / opt.TotalMutual)
		}
	}
	for _, s := range unit {
		t.row("matching", s.Name(), f3(unitRatios[s.Name()].Mean()))
	}
	return t.flush()
}
