package experiments

import (
	"fmt"
	"io"

	"repro/internal/benefit"
	"repro/internal/core"
	"repro/internal/dynamics"
	"repro/internal/market"
	"repro/internal/quality"
	"repro/internal/stats"
)

func init() {
	register(Experiment{
		ID:    "R-Fig12",
		Title: "end-to-end answer accuracy after aggregation, per assignment algorithm",
		Expected: "quality-aware assignment (exact/greedy/quality-only) clearly beats worker-only and " +
			"random on aggregated accuracy; weighted voting adds a margin over majority voting",
		Run: runFig12,
	})
	register(Experiment{
		ID:    "R-Fig13",
		Title: "worker participation across rounds (willingness to participate)",
		Expected: "participation under mutual-benefit assignment stays high while quality-only bleeds " +
			"workers round after round, and its cumulative benefit falls behind despite winning single rounds",
		Run: runFig13,
	})
	register(Experiment{
		ID:    "R-Tab4",
		Title: "aggregation methods vs. redundancy (majority / weighted / EM)",
		Expected: "accuracy grows with redundancy for all aggregators; weighted voting (oracle) " +
			"leads throughout; EM trails at low redundancy (too few answers per worker to estimate " +
			"accuracies) and narrows the gap as redundancy grows — the one-coin model mismatch " +
			"against per-task difficulty keeps it from matching the oracle",
		Run: runTab4,
	})
}

// collectVotes converts an assignment into quality.Votes carrying effective
// accuracies.
func collectVotes(p *core.Problem, sel []int) []quality.Vote {
	votes := make([]quality.Vote, 0, len(sel))
	for _, ei := range sel {
		e := &p.Edges[ei]
		acc := p.Model.EffectiveAccuracy(&p.In.Workers[e.W], &p.In.Tasks[e.T])
		votes = append(votes, quality.Vote{Worker: e.W, Task: e.T, Acc: acc})
	}
	return votes
}

func runFig12(w io.Writer, cfg RunConfig) error {
	reps := cfg.reps(5)
	mcfg := market.MicrotaskTraceConfig(cfg.pick(300, 60), cfg.pick(150, 30))
	solvers := []core.Solver{
		core.Exact{Kind: core.MutualWeight},
		core.Greedy{Kind: core.MutualWeight},
		core.SubmodularGreedy{},
		core.QualityOnly(),
		core.WorkerOnly(),
		core.Random{},
	}
	t := newTable(w, "algorithm", "majority-acc", "weighted-acc", "coverage")
	for _, s := range solvers {
		mv, wv, cov := stats.NewRunning(), stats.NewRunning(), stats.NewRunning()
		for rep := 0; rep < reps; rep++ {
			seed := cfg.Seed + uint64(rep)
			in, err := market.Generate(mcfg, seed)
			if err != nil {
				return err
			}
			p, err := core.NewProblem(in, benefit.DefaultParams())
			if err != nil {
				return err
			}
			sel, m, err := core.Run(p, s, stats.NewRNG(seed))
			if err != nil {
				return err
			}
			r := stats.NewRNG(seed * 31)
			as, err := quality.Simulate(in.NumWorkers(), in.NumTasks(), collectVotes(p, sel), r)
			if err != nil {
				return err
			}
			mv.Add(quality.Accuracy(as, quality.MajorityVote(as, r), true))
			wv.Add(quality.Accuracy(as, quality.WeightedVote(as, r), true))
			cov.Add(m.SlotCoverage)
		}
		t.row(s.Name(), f3(mv.Mean()), f3(wv.Mean()), f3(cov.Mean()))
	}
	return t.flush()
}

func runFig13(w io.Writer, cfg RunConfig) error {
	rounds := cfg.pick(20, 6)
	mcfg := market.Config{
		NumWorkers: cfg.pick(200, 60),
		NumTasks:   cfg.pick(120, 40),
	}
	policies := []core.Solver{
		core.Greedy{Kind: core.MutualWeight},
		core.QualityOnly(),
		core.Random{},
	}
	reports := map[string]*dynamics.Report{}
	for _, s := range policies {
		rep, err := dynamics.Simulate(dynamics.Config{
			Rounds: rounds,
			Market: mcfg,
			Params: benefit.DefaultParams(),
			Solver: s,
		}, cfg.Seed)
		if err != nil {
			return err
		}
		reports[s.Name()] = rep
	}
	headers := []string{"round"}
	for _, s := range policies {
		headers = append(headers, s.Name()+"-part")
	}
	t := newTable(w, headers...)
	for round := 0; round < rounds; round++ {
		row := []interface{}{round}
		for _, s := range policies {
			row = append(row, f3(reports[s.Name()].Rounds[round].Participation))
		}
		t.row(row...)
	}
	if err := t.flush(); err != nil {
		return err
	}
	for _, s := range policies {
		rep := reports[s.Name()]
		fmt.Fprintf(w, "%-14s final participation %.3f, cumulative mutual benefit %.1f\n",
			s.Name(), rep.FinalParticipation, rep.TotalMutual)
	}
	return nil
}

func runTab4(w io.Writer, cfg RunConfig) error {
	reps := cfg.reps(5)
	// EM needs a meaningful number of answers per worker to estimate
	// accuracies, so this experiment uses the dense-aggregation regime of
	// the Dawid–Skene literature: a small committed crowd with high
	// capacity answering a large task batch.
	nw, nt := cfg.pick(60, 25), cfg.pick(500, 60)
	t := newTable(w, "redundancy", "majority", "weighted", "em-1coin", "em-2coin")
	for _, k := range []int{1, 3, 5, 7} {
		mcfg := market.MicrotaskTraceConfig(nw, nt)
		mcfg.MinReplication, mcfg.MaxReplication = k, k
		mcfg.MinCapacity, mcfg.MaxCapacity = 40, 80
		mv, wv, em, em2 := stats.NewRunning(), stats.NewRunning(), stats.NewRunning(), stats.NewRunning()
		for rep := 0; rep < reps; rep++ {
			seed := cfg.Seed + uint64(rep)
			in, err := market.Generate(mcfg, seed)
			if err != nil {
				return err
			}
			p, err := core.NewProblem(in, benefit.DefaultParams())
			if err != nil {
				return err
			}
			sel, _, err := core.Run(p, core.Greedy{Kind: core.MutualWeight}, stats.NewRNG(seed))
			if err != nil {
				return err
			}
			r := stats.NewRNG(seed * 97)
			as, err := quality.Simulate(in.NumWorkers(), in.NumTasks(), collectVotes(p, sel), r)
			if err != nil {
				return err
			}
			mv.Add(quality.Accuracy(as, quality.MajorityVote(as, r), true))
			wv.Add(quality.Accuracy(as, quality.WeightedVote(as, r), true))
			emPred, _ := quality.EM(as, 0, r)
			em.Add(quality.Accuracy(as, emPred, true))
			em2Pred, _ := quality.EMTwoCoin(as, 0, r)
			em2.Add(quality.Accuracy(as, em2Pred, true))
		}
		t.row(k, f3(mv.Mean()), f3(wv.Mean()), f3(em.Mean()), f3(em2.Mean()))
	}
	return t.flush()
}
