package experiments

// The benchmark-regression harness behind `mbabench -benchjson`: it times
// problem construction (parallel vs the retained serial reference), the
// feasibility check, and the solver line-up at three market scales with
// testing.Benchmark, and emits a machine-readable report.  Future PRs
// compare their run against the checked-in BENCH_construction.json to catch
// performance regressions; the schema is documented in EXPERIMENTS.md.

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"testing"

	"repro/internal/benefit"
	"repro/internal/core"
	"repro/internal/market"
	"repro/internal/stats"
)

// BenchSchema identifies the report format; bump when fields change.
const BenchSchema = "mba-bench/v1"

// benchExactEdgeBudget caps the edge count at which the exact flow solver
// and local search join the line-up (they are super-linear and would
// dominate the harness's wall clock at the larger scales).
const benchExactEdgeBudget = 60000

// BenchScale is one market size of the regression harness.
type BenchScale struct {
	Name    string `json:"name"`
	Workers int    `json:"workers"`
	Tasks   int    `json:"tasks"`
}

// DefaultBenchScales returns the three freelance-trace scales the harness
// measures: the headline comparison size, and two steps toward the
// million-edge regime of R-Fig9.
func DefaultBenchScales() []BenchScale {
	return []BenchScale{
		{Name: "small", Workers: 400, Tasks: 300},
		{Name: "medium", Workers: 1600, Tasks: 1200},
		{Name: "large", Workers: 6400, Tasks: 4800},
	}
}

// BenchResult is one benchmark entry of the report.
type BenchResult struct {
	// Name is "new-problem", "new-problem-serial", "feasible", or a solver
	// name as reported by Solver.Name().
	Name string `json:"name"`
	// Scale echoes the BenchScale the entry ran at.
	Scale   string `json:"scale"`
	Workers int    `json:"workers"`
	Tasks   int    `json:"tasks"`
	Edges   int    `json:"edges"`
	// Iterations is the b.N testing.Benchmark settled on.
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// BenchReport is the top-level document written to BENCH_construction.json.
type BenchReport struct {
	Schema     string        `json:"schema"`
	GoVersion  string        `json:"go_version"`
	GOMAXPROCS int           `json:"gomaxprocs"`
	Seed       uint64        `json:"seed"`
	Results    []BenchResult `json:"results"`
}

// WriteJSON writes the indented JSON document.
func (r *BenchReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// BenchConfig parameterises RunBenchJSON.
type BenchConfig struct {
	Seed uint64
	// Scales defaults to DefaultBenchScales.
	Scales []BenchScale
	// Solvers defaults to the greedy family plus the baselines (with exact
	// and local-search joining below benchExactEdgeBudget edges).  Tests
	// override it to keep the harness fast.
	Solvers []core.Solver
}

// RunBenchJSON runs the regression harness, logging one human-readable line
// per entry to log, and returns the report.
func RunBenchJSON(log io.Writer, cfg BenchConfig) (*BenchReport, error) {
	scales := cfg.Scales
	if len(scales) == 0 {
		scales = DefaultBenchScales()
	}
	rep := &BenchReport{
		Schema:     BenchSchema,
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Seed:       cfg.Seed,
	}
	for _, sc := range scales {
		in, err := market.Generate(market.FreelanceTraceConfig(sc.Workers, sc.Tasks), cfg.Seed)
		if err != nil {
			return nil, err
		}
		p, err := core.NewProblem(in, benefit.DefaultParams())
		if err != nil {
			return nil, err
		}
		add := func(name string, br testing.BenchmarkResult) {
			rep.Results = append(rep.Results, BenchResult{
				Name: name, Scale: sc.Name,
				Workers: sc.Workers, Tasks: sc.Tasks, Edges: len(p.Edges),
				Iterations:  br.N,
				NsPerOp:     float64(br.NsPerOp()),
				AllocsPerOp: br.AllocsPerOp(),
				BytesPerOp:  br.AllocedBytesPerOp(),
			})
			fmt.Fprintf(log, "%-8s %-20s %14.0f ns/op %10d allocs/op\n",
				sc.Name, name, float64(br.NsPerOp()), br.AllocsPerOp())
		}

		add("new-problem", testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := core.NewProblem(in, benefit.DefaultParams()); err != nil {
					b.Fatal(err)
				}
			}
		}))
		add("new-problem-serial", testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := core.NewProblemSerial(in, benefit.DefaultParams()); err != nil {
					b.Fatal(err)
				}
			}
		}))

		sel, err := (core.Greedy{Kind: core.MutualWeight}).Solve(p, nil)
		if err != nil {
			return nil, err
		}
		add("feasible", testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := p.Feasible(sel); err != nil {
					b.Fatal(err)
				}
			}
		}))

		solvers := cfg.Solvers
		if solvers == nil {
			solvers = []core.Solver{
				core.Greedy{Kind: core.MutualWeight},
				core.QualityOnly(),
				core.WorkerOnly(),
				core.ShardedGreedy{Kind: core.MutualWeight},
				core.Random{},
				core.RoundRobin{},
			}
			if len(p.Edges) <= benchExactEdgeBudget {
				solvers = append(solvers,
					core.LocalSearch{Kind: core.MutualWeight},
					core.Exact{Kind: core.MutualWeight},
				)
			}
		}
		for _, s := range solvers {
			s := s
			add(s.Name(), testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := s.Solve(p, stats.NewRNG(uint64(i))); err != nil {
						b.Fatal(err)
					}
				}
			}))
		}
	}
	return rep, nil
}
