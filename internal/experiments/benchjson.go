package experiments

// The benchmark-regression harness behind `mbabench -benchjson`: three
// suites of testing.Benchmark runs emitting one machine-readable report.
//
//   - "construction": problem construction (parallel vs the retained serial
//     reference), the feasibility check, and the offline solver line-up at
//     three market scales.  Checked in as BENCH_construction.json.
//   - "solve": the steady-state serving path — same-shape RebuildProblem
//     into retained arenas, and the greedy / sharded / local-search solvers
//     with a pinned Workspace so repeated solves reuse their buffers.
//     The O(E)-per-pass local search is cheap enough to run at every scale.
//   - "round": an end-to-end platform round — snapshot, rebuild, solve,
//     validate-and-commit — over a live Service with no journal attached.
//   - "matching": the exact flow path in isolation, cold (ExactSerial —
//     fresh graph, network and scratch every solve) vs. workspace-reused
//     (Exact with a pinned warmed Workspace) at three scales of its own:
//     the exact solver is super-linear, so the suite stops where it stays
//     tractable.  Checked in as BENCH_matching.json.
//   - "incremental": the churn-rate × market-size grid of the delta
//     solving path — cold and warm full exact solves against the
//     incremental solver serving zero-churn rounds and ping-ponged 1% / 5%
//     churn batches through carried duals.  Checked in as
//     BENCH_incremental.json; the ≥10× warm-vs-cold headline lives in the
//     "lg" rows.
//   - "ingest": sustained journaled event throughput across the ingestion
//     pipelines — JSONL single-event, binary single-event, concurrent
//     binary group-commit, and 100-event batches — under both fsync
//     policies.  Checked in as BENCH_ingest.json; the ≥10× headline is
//     binary-batch100 vs json-single under fsync-always.
//   - "overload": the admission-controlled serving path under open-loop
//     storms at 1×/2×/4× of write capacity — admitted-latency percentiles
//     and the shed fraction per multiplier.  Checked in as
//     BENCH_overload.json (tracked, not wall-clock-gated; see
//     benchoverload.go).
//
// "solve" and "round" are checked in together as BENCH_solve.json.  Future
// PRs compare a fresh run against the checked-in baselines (`mbabench
// -benchdiff`, `make bench-diff`) to catch performance regressions; the
// schema is documented in EXPERIMENTS.md.

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"testing"

	"repro/internal/benefit"
	"repro/internal/core"
	"repro/internal/market"
	"repro/internal/platform"
	"repro/internal/stats"
)

// BenchSchema identifies the report format; bump when fields change.
// v2 added the per-result "suite" field and the report-level "suites" list.
const BenchSchema = "mba-bench/v2"

// benchExactEdgeBudget caps the edge count at which the exact flow solver
// joins the construction line-up (it is super-linear and would dominate the
// harness's wall clock at the larger scales).
const benchExactEdgeBudget = 60000

// BenchSuites lists the suites RunBenchJSON knows, in canonical order.
func BenchSuites() []string {
	return []string{"construction", "solve", "round", "matching", "incremental", "sharded-round", "ingest", "overload"}
}

// BenchScale is one market size of the regression harness.
type BenchScale struct {
	Name    string `json:"name"`
	Workers int    `json:"workers"`
	Tasks   int    `json:"tasks"`
}

// DefaultBenchScales returns the three freelance-trace scales the harness
// measures: the headline comparison size, and two steps toward the
// million-edge regime of R-Fig9.
func DefaultBenchScales() []BenchScale {
	return []BenchScale{
		{Name: "small", Workers: 400, Tasks: 300},
		{Name: "medium", Workers: 1600, Tasks: 1200},
		{Name: "large", Workers: 6400, Tasks: 4800},
	}
}

// BenchResult is one benchmark entry of the report.
type BenchResult struct {
	// Suite is the suite the entry belongs to ("construction", "solve",
	// "round").
	Suite string `json:"suite"`
	// Name is "new-problem", "rebuild-problem", "close-round", … or a
	// solver name as reported by Solver.Name().
	Name string `json:"name"`
	// Scale echoes the BenchScale the entry ran at.
	Scale   string `json:"scale"`
	Workers int    `json:"workers"`
	Tasks   int    `json:"tasks"`
	Edges   int    `json:"edges"`
	// Iterations is the b.N testing.Benchmark settled on.
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// BenchReport is the top-level document written to BENCH_construction.json
// and BENCH_solve.json.
type BenchReport struct {
	Schema     string   `json:"schema"`
	GoVersion  string   `json:"go_version"`
	GOMAXPROCS int      `json:"gomaxprocs"`
	Seed       uint64   `json:"seed"`
	Suites     []string `json:"suites"`
	// RoundSolver echoes BenchConfig.RoundSolver so `mbabench -benchdiff`
	// re-runs a baseline with the solver it was recorded with.  Empty means
	// each round suite's pinned default (greedy for "round", exact for
	// "sharded-round").
	RoundSolver string        `json:"round_solver,omitempty"`
	Results     []BenchResult `json:"results"`
}

// WriteJSON writes the indented JSON document.
func (r *BenchReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// BenchConfig parameterises RunBenchJSON.
type BenchConfig struct {
	Seed uint64
	// Scales defaults to DefaultBenchScales.
	Scales []BenchScale
	// Suites defaults to {"construction"}.
	Suites []string
	// Solvers overrides the solver line-up of the construction and solve
	// suites.  Tests override it to keep the harness fast.
	Solvers []core.Solver
	// RoundSolver overrides the serving solver of the "round" and
	// "sharded-round" suites by registry name.  Empty keeps each suite's
	// pinned default — greedy for "round" (so checked-in BENCH_solve.json
	// baselines stay comparable) and exact for "sharded-round" (the
	// super-linear solver whose cost the partitioning amortises).
	RoundSolver string
}

// RunBenchJSON runs the regression harness, logging one human-readable line
// per entry to log, and returns the report.
func RunBenchJSON(log io.Writer, cfg BenchConfig) (*BenchReport, error) {
	scales := cfg.Scales
	if len(scales) == 0 {
		scales = DefaultBenchScales()
	}
	suites := cfg.Suites
	if len(suites) == 0 {
		suites = []string{"construction"}
	}
	rep := &BenchReport{
		Schema:      BenchSchema,
		GoVersion:   runtime.Version(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		Seed:        cfg.Seed,
		Suites:      suites,
		RoundSolver: cfg.RoundSolver,
	}
	for _, suite := range suites {
		var err error
		switch suite {
		case "construction":
			err = runConstructionSuite(log, cfg, scales, rep)
		case "solve":
			err = runSolveSuite(log, cfg, scales, rep)
		case "round":
			err = runRoundSuite(log, cfg, scales, rep)
		case "matching":
			err = runMatchingSuite(log, cfg, rep)
		case "incremental":
			err = runIncrementalSuite(log, cfg, rep)
		case "sharded-round":
			err = runShardedRoundSuite(log, cfg, rep)
		case "ingest":
			err = runIngestSuite(log, cfg, rep)
		case "overload":
			err = runOverloadSuite(log, cfg, rep)
		default:
			err = fmt.Errorf("experiments: unknown bench suite %q (have %v)", suite, BenchSuites())
		}
		if err != nil {
			return nil, err
		}
	}
	return rep, nil
}

// benchAdder returns the append-and-log closure shared by all suites.
func benchAdder(log io.Writer, rep *BenchReport, suite string, sc BenchScale, edges int) func(string, testing.BenchmarkResult) {
	return func(name string, br testing.BenchmarkResult) {
		rep.Results = append(rep.Results, BenchResult{
			Suite: suite, Name: name, Scale: sc.Name,
			Workers: sc.Workers, Tasks: sc.Tasks, Edges: edges,
			Iterations:  br.N,
			NsPerOp:     float64(br.NsPerOp()),
			AllocsPerOp: br.AllocsPerOp(),
			BytesPerOp:  br.AllocedBytesPerOp(),
		})
		fmt.Fprintf(log, "%-13s %-8s %-20s %14.0f ns/op %10d allocs/op\n",
			suite, sc.Name, name, float64(br.NsPerOp()), br.AllocsPerOp())
	}
}

// benchInstance generates the freelance-trace workload for one scale.
func benchInstance(sc BenchScale, seed uint64) (*market.Instance, error) {
	return market.Generate(market.FreelanceTraceConfig(sc.Workers, sc.Tasks), seed)
}

// runConstructionSuite times problem construction, the feasibility check,
// and the cold-path solver line-up (fresh workspaces every solve).
func runConstructionSuite(log io.Writer, cfg BenchConfig, scales []BenchScale, rep *BenchReport) error {
	for _, sc := range scales {
		in, err := benchInstance(sc, cfg.Seed)
		if err != nil {
			return err
		}
		p, err := core.NewProblem(in, benefit.DefaultParams())
		if err != nil {
			return err
		}
		add := benchAdder(log, rep, "construction", sc, len(p.Edges))

		add("new-problem", testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := core.NewProblem(in, benefit.DefaultParams()); err != nil {
					b.Fatal(err)
				}
			}
		}))
		add("new-problem-serial", testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := core.NewProblemSerial(in, benefit.DefaultParams()); err != nil {
					b.Fatal(err)
				}
			}
		}))

		sel, err := (core.Greedy{Kind: core.MutualWeight}).Solve(p, nil)
		if err != nil {
			return err
		}
		add("feasible", testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := p.Feasible(sel); err != nil {
					b.Fatal(err)
				}
			}
		}))

		solvers := cfg.Solvers
		if solvers == nil {
			solvers = []core.Solver{
				core.Greedy{Kind: core.MutualWeight},
				core.QualityOnly(),
				core.WorkerOnly(),
				core.ShardedGreedy{Kind: core.MutualWeight},
				core.Random{},
				core.RoundRobin{},
				core.LocalSearch{Kind: core.MutualWeight},
			}
			if len(p.Edges) <= benchExactEdgeBudget {
				solvers = append(solvers, core.Exact{Kind: core.MutualWeight})
			}
		}
		for _, s := range solvers {
			s := s
			add(s.Name(), testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := s.Solve(p, stats.NewRNG(uint64(i))); err != nil {
						b.Fatal(err)
					}
				}
			}))
		}
	}
	return nil
}

// runSolveSuite times the steady-state serving path: same-shape rebuilds
// into retained arenas, and repeated solves through a pinned Workspace so
// buffer reuse (not first-call allocation) is what gets measured.
func runSolveSuite(log io.Writer, cfg BenchConfig, scales []BenchScale, rep *BenchReport) error {
	for _, sc := range scales {
		in, err := benchInstance(sc, cfg.Seed)
		if err != nil {
			return err
		}
		p, err := core.NewProblem(in, benefit.DefaultParams())
		if err != nil {
			return err
		}
		add := benchAdder(log, rep, "solve", sc, len(p.Edges))

		prev, err := core.NewProblem(in, benefit.DefaultParams())
		if err != nil {
			return err
		}
		add("rebuild-problem", testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				p2, err := core.RebuildProblem(prev, in, benefit.DefaultParams())
				if err != nil {
					b.Fatal(err)
				}
				prev = p2
			}
		}))

		solvers := cfg.Solvers
		if solvers == nil {
			solvers = []core.Solver{
				core.Greedy{Kind: core.MutualWeight, WS: &core.Workspace{}},
				core.ShardedGreedy{Kind: core.MutualWeight, WS: &core.Workspace{}},
				core.LocalSearch{Kind: core.MutualWeight, WS: &core.Workspace{}},
				core.LocalSearchSerial{Kind: core.MutualWeight, WS: &core.Workspace{}},
			}
		}
		for _, s := range solvers {
			s := s
			// Warm the pinned workspace so the entry reports steady-state
			// allocation, not the first-call buffer growth.
			if _, err := s.Solve(p, stats.NewRNG(0)); err != nil {
				return err
			}
			add(s.Name(), testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := s.Solve(p, stats.NewRNG(uint64(i))); err != nil {
						b.Fatal(err)
					}
				}
			}))
		}
	}
	return nil
}

// MatchingBenchScales returns the three freelance-trace scales of the
// "matching" suite.  They are smaller than DefaultBenchScales because the
// suite runs the exact min-cost-flow solver twice per scale and that path
// is super-linear in the edge count.
func MatchingBenchScales() []BenchScale {
	return []BenchScale{
		{Name: "xs", Workers: 100, Tasks: 75},
		{Name: "sm", Workers: 200, Tasks: 150},
		{Name: "md", Workers: 400, Tasks: 300},
	}
}

// runMatchingSuite times the exact b-matching path cold vs. workspace-
// reused.  "exact-serial" is the retained reference — fresh graph, flow
// network and per-call scratch, SPFA potentials — while "exact" solves
// through one pinned warmed Workspace so arena reuse and the O(E)
// topological potential start-up are what gets measured.  Both produce
// bit-identical matchings (pinned by the parity tests), so the entries
// differ only in engine cost.
func runMatchingSuite(log io.Writer, cfg BenchConfig, rep *BenchReport) error {
	scales := cfg.Scales
	if len(scales) == 0 {
		scales = MatchingBenchScales()
	}
	for _, sc := range scales {
		in, err := benchInstance(sc, cfg.Seed)
		if err != nil {
			return err
		}
		p, err := core.NewProblem(in, benefit.DefaultParams())
		if err != nil {
			return err
		}
		add := benchAdder(log, rep, "matching", sc, len(p.Edges))

		cold := core.ExactSerial{Kind: core.MutualWeight}
		add(cold.Name(), testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := cold.Solve(p, nil); err != nil {
					b.Fatal(err)
				}
			}
		}))

		warm := core.Exact{Kind: core.MutualWeight, WS: core.NewWorkspace()}
		// Warm the pinned workspace so the entry reports steady-state
		// reuse, not the first-call arena growth.
		if _, err := warm.Solve(p, nil); err != nil {
			return err
		}
		add(warm.Name(), testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := warm.Solve(p, nil); err != nil {
					b.Fatal(err)
				}
			}
		}))
	}
	return nil
}

// IncrementalBenchScales returns the churn-grid market sizes.  "lg" is the
// headline scale of the warm-vs-cold comparison; like the matching suite it
// stays below the sizes where the cold exact baseline would dominate the
// harness's wall clock.
func IncrementalBenchScales() []BenchScale {
	return []BenchScale{
		{Name: "sm", Workers: 200, Tasks: 150},
		{Name: "md", Workers: 400, Tasks: 300},
		{Name: "lg", Workers: 800, Tasks: 600},
	}
}

// benchSubsetInstance materialises the instance that keeps all entities of
// in except every strideW-th worker and strideT-th task, with dense IDs and
// the full market's MaxPayment pinned (so utility normalisation — and with
// it every surviving edge weight — is identical in both instances).
func benchSubsetInstance(in *market.Instance, strideW, strideT int) (*market.Instance, []int, []int) {
	out := &market.Instance{
		Name:          in.Name,
		NumCategories: in.NumCategories,
		MaxPayment:    in.MaxPayment,
	}
	var keptW, keptT []int
	for i, w := range in.Workers {
		if (i+1)%strideW == 0 {
			continue
		}
		w.ID = len(out.Workers)
		out.Workers = append(out.Workers, w)
		keptW = append(keptW, i)
	}
	for j, t := range in.Tasks {
		if (j+1)%strideT == 0 {
			continue
		}
		t.ID = len(out.Tasks)
		out.Tasks = append(out.Tasks, t)
		keptT = append(keptT, j)
	}
	return out, keptW, keptT
}

// benchDeltaBetween encodes the positional churn delta from the market
// whose entity identities are prevIDs to the one with curIDs; both lists
// are ascending (they are kept-index lists over the same full market).
func benchDeltaBetween(prevW, curW, prevT, curT []int) *core.Delta {
	diff := func(prevIDs, curIDs []int) (prev, added, removed []int32) {
		prev = make([]int32, len(curIDs))
		i, j := 0, 0
		for j < len(curIDs) {
			switch {
			case i < len(prevIDs) && prevIDs[i] == curIDs[j]:
				prev[j] = int32(i)
				i++
				j++
			case i < len(prevIDs) && prevIDs[i] < curIDs[j]:
				removed = append(removed, int32(i))
				i++
			default:
				prev[j] = -1
				added = append(added, int32(j))
				j++
			}
		}
		for ; i < len(prevIDs); i++ {
			removed = append(removed, int32(i))
		}
		return prev, added, removed
	}
	d := &core.Delta{}
	d.PrevWorker, d.AddedWorkers, d.RemovedWorkers = diff(prevW, curW)
	d.PrevTask, d.AddedTasks, d.RemovedTasks = diff(prevT, curT)
	return d
}

// runIncrementalSuite measures the delta solving path on the churn grid.
// Per scale: the cold exact baseline (exact-serial, fresh everything), the
// warm full solve (exact through a pinned workspace), the incremental
// solver serving a zero-churn round (the steady state of the ≥10× goal),
// and the incremental solver ping-ponging between the full market and a
// churned copy at two churn rates — every iteration applies one
// departure/arrival batch and repairs the matching through carried duals.
func runIncrementalSuite(log io.Writer, cfg BenchConfig, rep *BenchReport) error {
	scales := cfg.Scales
	if len(scales) == 0 {
		scales = IncrementalBenchScales()
	}
	for _, sc := range scales {
		in, err := benchInstance(sc, cfg.Seed)
		if err != nil {
			return err
		}
		p, err := core.NewProblem(in, benefit.DefaultParams())
		if err != nil {
			return err
		}
		add := benchAdder(log, rep, "incremental", sc, len(p.Edges))

		cold := core.ExactSerial{Kind: core.MutualWeight}
		add("exact-cold", testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := cold.Solve(p, nil); err != nil {
					b.Fatal(err)
				}
			}
		}))

		warm := core.Exact{Kind: core.MutualWeight, WS: core.NewWorkspace()}
		if _, err := warm.Solve(p, nil); err != nil {
			return err
		}
		add("exact-warm", testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := warm.Solve(p, nil); err != nil {
					b.Fatal(err)
				}
			}
		}))

		// Zero churn: an identity delta every round — pure revalidation plus
		// extraction, the steady state the ≥10× acceptance target measures.
		ident := &core.Delta{
			PrevWorker: make([]int32, in.NumWorkers()),
			PrevTask:   make([]int32, in.NumTasks()),
		}
		for i := range ident.PrevWorker {
			ident.PrevWorker[i] = int32(i)
		}
		for j := range ident.PrevTask {
			ident.PrevTask[j] = int32(j)
		}
		add("incremental-steady", testing.Benchmark(func(b *testing.B) {
			s := core.NewIncrementalExact()
			if _, err := s.Solve(p, nil); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := s.SolveDeltaCtx(nil, p, ident, nil); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			if r := s.LastReport(); !r.WarmStarted || r.FullSolveFallback {
				b.Fatalf("steady round not served warm: %+v", r)
			}
		}))

		// Churned rounds: ping-pong between the full market and a copy with
		// every strideW-th worker / strideT-th task removed, so each
		// iteration is one real departure-or-arrival batch at the named
		// churn rate (1/stride of each side).
		for _, churn := range []struct {
			name    string
			strideW int
			strideT int
		}{
			{"incremental-churn1", 100, 100},
			{"incremental-churn5", 20, 20},
		} {
			inB, keptW, keptT := benchSubsetInstance(in, churn.strideW, churn.strideT)
			pB, err := core.NewProblem(inB, benefit.DefaultParams())
			if err != nil {
				return err
			}
			allW := make([]int, in.NumWorkers())
			for i := range allW {
				allW[i] = i
			}
			allT := make([]int, in.NumTasks())
			for j := range allT {
				allT[j] = j
			}
			dAB := benchDeltaBetween(allW, keptW, allT, keptT)
			dBA := benchDeltaBetween(keptW, allW, keptT, allT)
			add(churn.name, testing.Benchmark(func(b *testing.B) {
				s := core.NewIncrementalExact()
				if _, err := s.Solve(p, nil); err != nil {
					b.Fatal(err)
				}
				// Warm both directions once so arena growth is off-clock.
				if _, err := s.SolveDeltaCtx(nil, pB, dAB, nil); err != nil {
					b.Fatal(err)
				}
				if _, err := s.SolveDeltaCtx(nil, p, dBA, nil); err != nil {
					b.Fatal(err)
				}
				if r := s.LastReport(); !r.WarmStarted || r.FullSolveFallback {
					b.Fatalf("churn round not served warm: %+v", r)
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if i%2 == 0 {
						_, err = s.SolveDeltaCtx(nil, pB, dAB, nil)
					} else {
						_, err = s.SolveDeltaCtx(nil, p, dBA, nil)
					}
					if err != nil {
						b.Fatal(err)
					}
				}
			}))
		}
	}
	return nil
}

// benchRoundSolver resolves the round suites' serving solver by registry
// name.  Greedy and exact are special-cased to carry a pinned workspace, so
// repeated rounds measure steady-state arena reuse rather than per-solve
// buffer growth; every call returns a fresh instance (solver state must not
// be shared between shards solving concurrently).
func benchRoundSolver(name string) (core.Solver, error) {
	switch name {
	case "greedy":
		return core.Greedy{Kind: core.MutualWeight, WS: &core.Workspace{}}, nil
	case "exact":
		return core.Exact{Kind: core.MutualWeight, WS: core.NewWorkspace()}, nil
	}
	return core.ByName(name)
}

// runRoundSuite times an end-to-end platform round over a live Service:
// snapshot under the state's read lock, rebuild into the previous round's
// arenas, solve (greedy unless cfg.RoundSolver overrides), then
// validate-and-commit.  No journal is attached, so the entry isolates the
// round protocol from disk I/O.
func runRoundSuite(log io.Writer, cfg BenchConfig, scales []BenchScale, rep *BenchReport) error {
	for _, sc := range scales {
		in, err := benchInstance(sc, cfg.Seed)
		if err != nil {
			return err
		}
		p, err := core.NewProblem(in, benefit.DefaultParams())
		if err != nil {
			return err
		}
		add := benchAdder(log, rep, "round", sc, len(p.Edges))

		state, err := platform.NewState(in.NumCategories)
		if err != nil {
			return err
		}
		for _, w := range in.Workers {
			if _, err := state.Apply(platform.NewWorkerJoined(w)); err != nil {
				return err
			}
		}
		for _, t := range in.Tasks {
			if _, err := state.Apply(platform.NewTaskPosted(t)); err != nil {
				return err
			}
		}
		solverName := cfg.RoundSolver
		if solverName == "" {
			solverName = "greedy"
		}
		solver, err := benchRoundSolver(solverName)
		if err != nil {
			return err
		}
		svc, err := platform.NewService(state, solver, benefit.DefaultParams(), nil, cfg.Seed)
		if err != nil {
			return err
		}
		// Warm-up round: the first CloseRound pays the arena allocation that
		// every later same-shape round reuses.
		if _, err := svc.CloseRound(); err != nil {
			return err
		}
		add("close-round", testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := svc.CloseRound(); err != nil {
					b.Fatal(err)
				}
			}
		}))
	}
	return nil
}
