package experiments

// The benchmark-regression harness behind `mbabench -benchjson`: three
// suites of testing.Benchmark runs emitting one machine-readable report.
//
//   - "construction": problem construction (parallel vs the retained serial
//     reference), the feasibility check, and the offline solver line-up at
//     three market scales.  Checked in as BENCH_construction.json.
//   - "solve": the steady-state serving path — same-shape RebuildProblem
//     into retained arenas, and the greedy / sharded / local-search solvers
//     with a pinned Workspace so repeated solves reuse their buffers.
//     The O(E)-per-pass local search is cheap enough to run at every scale.
//   - "round": an end-to-end platform round — snapshot, rebuild, solve,
//     validate-and-commit — over a live Service with no journal attached.
//   - "matching": the exact flow path in isolation, cold (ExactSerial —
//     fresh graph, network and scratch every solve) vs. workspace-reused
//     (Exact with a pinned warmed Workspace) at three scales of its own:
//     the exact solver is super-linear, so the suite stops where it stays
//     tractable.  Checked in as BENCH_matching.json.
//
// "solve" and "round" are checked in together as BENCH_solve.json.  Future
// PRs compare a fresh run against the checked-in baselines (`mbabench
// -benchdiff`, `make bench-diff`) to catch performance regressions; the
// schema is documented in EXPERIMENTS.md.

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"testing"

	"repro/internal/benefit"
	"repro/internal/core"
	"repro/internal/market"
	"repro/internal/platform"
	"repro/internal/stats"
)

// BenchSchema identifies the report format; bump when fields change.
// v2 added the per-result "suite" field and the report-level "suites" list.
const BenchSchema = "mba-bench/v2"

// benchExactEdgeBudget caps the edge count at which the exact flow solver
// joins the construction line-up (it is super-linear and would dominate the
// harness's wall clock at the larger scales).
const benchExactEdgeBudget = 60000

// BenchSuites lists the suites RunBenchJSON knows, in canonical order.
func BenchSuites() []string { return []string{"construction", "solve", "round", "matching"} }

// BenchScale is one market size of the regression harness.
type BenchScale struct {
	Name    string `json:"name"`
	Workers int    `json:"workers"`
	Tasks   int    `json:"tasks"`
}

// DefaultBenchScales returns the three freelance-trace scales the harness
// measures: the headline comparison size, and two steps toward the
// million-edge regime of R-Fig9.
func DefaultBenchScales() []BenchScale {
	return []BenchScale{
		{Name: "small", Workers: 400, Tasks: 300},
		{Name: "medium", Workers: 1600, Tasks: 1200},
		{Name: "large", Workers: 6400, Tasks: 4800},
	}
}

// BenchResult is one benchmark entry of the report.
type BenchResult struct {
	// Suite is the suite the entry belongs to ("construction", "solve",
	// "round").
	Suite string `json:"suite"`
	// Name is "new-problem", "rebuild-problem", "close-round", … or a
	// solver name as reported by Solver.Name().
	Name string `json:"name"`
	// Scale echoes the BenchScale the entry ran at.
	Scale   string `json:"scale"`
	Workers int    `json:"workers"`
	Tasks   int    `json:"tasks"`
	Edges   int    `json:"edges"`
	// Iterations is the b.N testing.Benchmark settled on.
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// BenchReport is the top-level document written to BENCH_construction.json
// and BENCH_solve.json.
type BenchReport struct {
	Schema     string        `json:"schema"`
	GoVersion  string        `json:"go_version"`
	GOMAXPROCS int           `json:"gomaxprocs"`
	Seed       uint64        `json:"seed"`
	Suites     []string      `json:"suites"`
	Results    []BenchResult `json:"results"`
}

// WriteJSON writes the indented JSON document.
func (r *BenchReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// BenchConfig parameterises RunBenchJSON.
type BenchConfig struct {
	Seed uint64
	// Scales defaults to DefaultBenchScales.
	Scales []BenchScale
	// Suites defaults to {"construction"}.
	Suites []string
	// Solvers overrides the solver line-up of the construction and solve
	// suites (the round suite always solves with greedy).  Tests override
	// it to keep the harness fast.
	Solvers []core.Solver
}

// RunBenchJSON runs the regression harness, logging one human-readable line
// per entry to log, and returns the report.
func RunBenchJSON(log io.Writer, cfg BenchConfig) (*BenchReport, error) {
	scales := cfg.Scales
	if len(scales) == 0 {
		scales = DefaultBenchScales()
	}
	suites := cfg.Suites
	if len(suites) == 0 {
		suites = []string{"construction"}
	}
	rep := &BenchReport{
		Schema:     BenchSchema,
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Seed:       cfg.Seed,
		Suites:     suites,
	}
	for _, suite := range suites {
		var err error
		switch suite {
		case "construction":
			err = runConstructionSuite(log, cfg, scales, rep)
		case "solve":
			err = runSolveSuite(log, cfg, scales, rep)
		case "round":
			err = runRoundSuite(log, cfg, scales, rep)
		case "matching":
			err = runMatchingSuite(log, cfg, rep)
		default:
			err = fmt.Errorf("experiments: unknown bench suite %q (have %v)", suite, BenchSuites())
		}
		if err != nil {
			return nil, err
		}
	}
	return rep, nil
}

// benchAdder returns the append-and-log closure shared by all suites.
func benchAdder(log io.Writer, rep *BenchReport, suite string, sc BenchScale, edges int) func(string, testing.BenchmarkResult) {
	return func(name string, br testing.BenchmarkResult) {
		rep.Results = append(rep.Results, BenchResult{
			Suite: suite, Name: name, Scale: sc.Name,
			Workers: sc.Workers, Tasks: sc.Tasks, Edges: edges,
			Iterations:  br.N,
			NsPerOp:     float64(br.NsPerOp()),
			AllocsPerOp: br.AllocsPerOp(),
			BytesPerOp:  br.AllocedBytesPerOp(),
		})
		fmt.Fprintf(log, "%-13s %-8s %-20s %14.0f ns/op %10d allocs/op\n",
			suite, sc.Name, name, float64(br.NsPerOp()), br.AllocsPerOp())
	}
}

// benchInstance generates the freelance-trace workload for one scale.
func benchInstance(sc BenchScale, seed uint64) (*market.Instance, error) {
	return market.Generate(market.FreelanceTraceConfig(sc.Workers, sc.Tasks), seed)
}

// runConstructionSuite times problem construction, the feasibility check,
// and the cold-path solver line-up (fresh workspaces every solve).
func runConstructionSuite(log io.Writer, cfg BenchConfig, scales []BenchScale, rep *BenchReport) error {
	for _, sc := range scales {
		in, err := benchInstance(sc, cfg.Seed)
		if err != nil {
			return err
		}
		p, err := core.NewProblem(in, benefit.DefaultParams())
		if err != nil {
			return err
		}
		add := benchAdder(log, rep, "construction", sc, len(p.Edges))

		add("new-problem", testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := core.NewProblem(in, benefit.DefaultParams()); err != nil {
					b.Fatal(err)
				}
			}
		}))
		add("new-problem-serial", testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := core.NewProblemSerial(in, benefit.DefaultParams()); err != nil {
					b.Fatal(err)
				}
			}
		}))

		sel, err := (core.Greedy{Kind: core.MutualWeight}).Solve(p, nil)
		if err != nil {
			return err
		}
		add("feasible", testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := p.Feasible(sel); err != nil {
					b.Fatal(err)
				}
			}
		}))

		solvers := cfg.Solvers
		if solvers == nil {
			solvers = []core.Solver{
				core.Greedy{Kind: core.MutualWeight},
				core.QualityOnly(),
				core.WorkerOnly(),
				core.ShardedGreedy{Kind: core.MutualWeight},
				core.Random{},
				core.RoundRobin{},
				core.LocalSearch{Kind: core.MutualWeight},
			}
			if len(p.Edges) <= benchExactEdgeBudget {
				solvers = append(solvers, core.Exact{Kind: core.MutualWeight})
			}
		}
		for _, s := range solvers {
			s := s
			add(s.Name(), testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := s.Solve(p, stats.NewRNG(uint64(i))); err != nil {
						b.Fatal(err)
					}
				}
			}))
		}
	}
	return nil
}

// runSolveSuite times the steady-state serving path: same-shape rebuilds
// into retained arenas, and repeated solves through a pinned Workspace so
// buffer reuse (not first-call allocation) is what gets measured.
func runSolveSuite(log io.Writer, cfg BenchConfig, scales []BenchScale, rep *BenchReport) error {
	for _, sc := range scales {
		in, err := benchInstance(sc, cfg.Seed)
		if err != nil {
			return err
		}
		p, err := core.NewProblem(in, benefit.DefaultParams())
		if err != nil {
			return err
		}
		add := benchAdder(log, rep, "solve", sc, len(p.Edges))

		prev, err := core.NewProblem(in, benefit.DefaultParams())
		if err != nil {
			return err
		}
		add("rebuild-problem", testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				p2, err := core.RebuildProblem(prev, in, benefit.DefaultParams())
				if err != nil {
					b.Fatal(err)
				}
				prev = p2
			}
		}))

		solvers := cfg.Solvers
		if solvers == nil {
			solvers = []core.Solver{
				core.Greedy{Kind: core.MutualWeight, WS: &core.Workspace{}},
				core.ShardedGreedy{Kind: core.MutualWeight, WS: &core.Workspace{}},
				core.LocalSearch{Kind: core.MutualWeight, WS: &core.Workspace{}},
				core.LocalSearchSerial{Kind: core.MutualWeight, WS: &core.Workspace{}},
			}
		}
		for _, s := range solvers {
			s := s
			// Warm the pinned workspace so the entry reports steady-state
			// allocation, not the first-call buffer growth.
			if _, err := s.Solve(p, stats.NewRNG(0)); err != nil {
				return err
			}
			add(s.Name(), testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := s.Solve(p, stats.NewRNG(uint64(i))); err != nil {
						b.Fatal(err)
					}
				}
			}))
		}
	}
	return nil
}

// MatchingBenchScales returns the three freelance-trace scales of the
// "matching" suite.  They are smaller than DefaultBenchScales because the
// suite runs the exact min-cost-flow solver twice per scale and that path
// is super-linear in the edge count.
func MatchingBenchScales() []BenchScale {
	return []BenchScale{
		{Name: "xs", Workers: 100, Tasks: 75},
		{Name: "sm", Workers: 200, Tasks: 150},
		{Name: "md", Workers: 400, Tasks: 300},
	}
}

// runMatchingSuite times the exact b-matching path cold vs. workspace-
// reused.  "exact-serial" is the retained reference — fresh graph, flow
// network and per-call scratch, SPFA potentials — while "exact" solves
// through one pinned warmed Workspace so arena reuse and the O(E)
// topological potential start-up are what gets measured.  Both produce
// bit-identical matchings (pinned by the parity tests), so the entries
// differ only in engine cost.
func runMatchingSuite(log io.Writer, cfg BenchConfig, rep *BenchReport) error {
	scales := cfg.Scales
	if len(scales) == 0 {
		scales = MatchingBenchScales()
	}
	for _, sc := range scales {
		in, err := benchInstance(sc, cfg.Seed)
		if err != nil {
			return err
		}
		p, err := core.NewProblem(in, benefit.DefaultParams())
		if err != nil {
			return err
		}
		add := benchAdder(log, rep, "matching", sc, len(p.Edges))

		cold := core.ExactSerial{Kind: core.MutualWeight}
		add(cold.Name(), testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := cold.Solve(p, nil); err != nil {
					b.Fatal(err)
				}
			}
		}))

		warm := core.Exact{Kind: core.MutualWeight, WS: core.NewWorkspace()}
		// Warm the pinned workspace so the entry reports steady-state
		// reuse, not the first-call arena growth.
		if _, err := warm.Solve(p, nil); err != nil {
			return err
		}
		add(warm.Name(), testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := warm.Solve(p, nil); err != nil {
					b.Fatal(err)
				}
			}
		}))
	}
	return nil
}

// runRoundSuite times an end-to-end platform round over a live Service:
// snapshot under the state's read lock, rebuild into the previous round's
// arenas, solve with greedy, then validate-and-commit.  No journal is
// attached, so the entry isolates the round protocol from disk I/O.
func runRoundSuite(log io.Writer, cfg BenchConfig, scales []BenchScale, rep *BenchReport) error {
	for _, sc := range scales {
		in, err := benchInstance(sc, cfg.Seed)
		if err != nil {
			return err
		}
		p, err := core.NewProblem(in, benefit.DefaultParams())
		if err != nil {
			return err
		}
		add := benchAdder(log, rep, "round", sc, len(p.Edges))

		state, err := platform.NewState(in.NumCategories)
		if err != nil {
			return err
		}
		for _, w := range in.Workers {
			if _, err := state.Apply(platform.NewWorkerJoined(w)); err != nil {
				return err
			}
		}
		for _, t := range in.Tasks {
			if _, err := state.Apply(platform.NewTaskPosted(t)); err != nil {
				return err
			}
		}
		solver := core.Greedy{Kind: core.MutualWeight, WS: &core.Workspace{}}
		svc, err := platform.NewService(state, solver, benefit.DefaultParams(), nil, cfg.Seed)
		if err != nil {
			return err
		}
		// Warm-up round: the first CloseRound pays the arena allocation that
		// every later same-shape round reuses.
		if _, err := svc.CloseRound(); err != nil {
			return err
		}
		add("close-round", testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := svc.CloseRound(); err != nil {
					b.Fatal(err)
				}
			}
		}))
	}
	return nil
}
