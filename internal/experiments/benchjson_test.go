package experiments

import (
	"bytes"
	"encoding/json"
	"io"
	"testing"

	"repro/internal/core"
)

// TestRunBenchJSONTinyScale runs the regression harness at a toy scale with
// a single solver and checks the report is complete and valid JSON.  The
// full-scale run is cmd/mbabench -benchjson.
func TestRunBenchJSONTinyScale(t *testing.T) {
	rep, err := RunBenchJSON(io.Discard, BenchConfig{
		Seed:    1,
		Scales:  []BenchScale{{Name: "tiny", Workers: 30, Tasks: 20}},
		Solvers: []core.Solver{core.Greedy{Kind: core.MutualWeight}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Schema != BenchSchema {
		t.Fatalf("schema %q", rep.Schema)
	}
	if len(rep.Suites) != 1 || rep.Suites[0] != "construction" {
		t.Fatalf("default suites %v, want [construction]", rep.Suites)
	}
	want := []string{"new-problem", "new-problem-serial", "feasible", "greedy"}
	if len(rep.Results) != len(want) {
		t.Fatalf("%d results, want %d", len(rep.Results), len(want))
	}
	for i, name := range want {
		r := rep.Results[i]
		if r.Name != name {
			t.Fatalf("result %d is %q, want %q", i, r.Name, name)
		}
		if r.Suite != "construction" {
			t.Fatalf("%s: suite %q, want construction", name, r.Suite)
		}
		if r.NsPerOp <= 0 || r.Iterations <= 0 {
			t.Fatalf("%s: ns/op %v iters %d not measured", name, r.NsPerOp, r.Iterations)
		}
		if r.Scale != "tiny" || r.Edges <= 0 {
			t.Fatalf("%s: scale metadata missing: %+v", name, r)
		}
	}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back BenchReport
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("report does not round-trip: %v", err)
	}
	if len(back.Results) != len(rep.Results) {
		t.Fatal("round-trip lost results")
	}
}

// TestRunBenchJSONSolveAndRoundSuites runs the two serving-path suites at a
// toy scale and checks every expected entry lands, tagged with its suite.
func TestRunBenchJSONSolveAndRoundSuites(t *testing.T) {
	rep, err := RunBenchJSON(io.Discard, BenchConfig{
		Seed:    1,
		Scales:  []BenchScale{{Name: "tiny", Workers: 30, Tasks: 20}},
		Suites:  []string{"solve", "round"},
		Solvers: []core.Solver{core.Greedy{Kind: core.MutualWeight, WS: &core.Workspace{}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	type entry struct{ suite, name string }
	want := []entry{
		{"solve", "rebuild-problem"},
		{"solve", "greedy"},
		{"round", "close-round"},
	}
	if len(rep.Results) != len(want) {
		t.Fatalf("%d results, want %d: %+v", len(rep.Results), len(want), rep.Results)
	}
	for i, w := range want {
		r := rep.Results[i]
		if r.Suite != w.suite || r.Name != w.name {
			t.Fatalf("result %d is %s/%s, want %s/%s", i, r.Suite, r.Name, w.suite, w.name)
		}
		if r.NsPerOp <= 0 || r.Iterations <= 0 || r.Edges <= 0 {
			t.Fatalf("%s/%s not measured: %+v", r.Suite, r.Name, r)
		}
	}
}

// TestRunBenchJSONMatchingSuite runs the exact-path suite at a toy scale
// and checks both engines land: the cold serial reference first, then the
// workspace-reused solver.
func TestRunBenchJSONMatchingSuite(t *testing.T) {
	rep, err := RunBenchJSON(io.Discard, BenchConfig{
		Seed:   1,
		Scales: []BenchScale{{Name: "tiny", Workers: 24, Tasks: 18}},
		Suites: []string{"matching"},
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"exact-serial", "exact"}
	if len(rep.Results) != len(want) {
		t.Fatalf("%d results, want %d: %+v", len(rep.Results), len(want), rep.Results)
	}
	for i, name := range want {
		r := rep.Results[i]
		if r.Suite != "matching" || r.Name != name {
			t.Fatalf("result %d is %s/%s, want matching/%s", i, r.Suite, r.Name, name)
		}
		if r.NsPerOp <= 0 || r.Iterations <= 0 || r.Edges <= 0 {
			t.Fatalf("%s not measured: %+v", name, r)
		}
	}
}

// TestRunBenchJSONUnknownSuite checks suite-name typos fail loudly instead
// of silently benchmarking nothing.
func TestRunBenchJSONUnknownSuite(t *testing.T) {
	_, err := RunBenchJSON(io.Discard, BenchConfig{Seed: 1, Suites: []string{"sovle"}})
	if err == nil {
		t.Fatal("unknown suite accepted")
	}
}
