package experiments

// Benchmark-regression comparison behind `mbabench -benchdiff` and `make
// bench-diff`: load a checked-in baseline report, re-run the suites it
// records, and fail on any entry that got more than tolerance slower (or
// meaningfully more allocation-hungry).

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// DefaultBenchTolerance is the fractional ns/op slowdown bench-diff allows
// before declaring a regression.
const DefaultBenchTolerance = 0.25

// benchDiffFloorNs exempts very fast entries from the ns/op gate: below
// ~50µs per op, scheduler noise on a busy host can exceed any reasonable
// tolerance.  Such entries are still printed and still gate on allocations.
const benchDiffFloorNs = 50e3

// benchDiffAllocSlack is the absolute allocs/op increase tolerated before
// the relative gate applies, so entries near zero allocations do not fail
// on a ±1 wobble.
const benchDiffAllocSlack = 8

// LoadBenchReport reads a report previously written by RunBenchJSON.
func LoadBenchReport(path string) (*BenchReport, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep BenchReport
	if err := json.Unmarshal(raw, &rep); err != nil {
		return nil, fmt.Errorf("experiments: parsing %s: %w", path, err)
	}
	if rep.Schema != BenchSchema {
		return nil, fmt.Errorf("experiments: %s has schema %q, want %q (regenerate with `make benchjson`)",
			path, rep.Schema, BenchSchema)
	}
	return &rep, nil
}

func benchKey(r BenchResult) string { return r.Suite + "/" + r.Scale + "/" + r.Name }

// MergeBenchMin combines two runs of the same suites into one report
// holding, per benchmark key, the sample with the lower ns/op.  Min is the
// right statistic for wall-clock benchmarks — external interference only
// ever adds time — so diffing against the merged report gates on what the
// code can do, not on what the scheduler did to one particular run.
// Entries present in only one run are kept as-is.
func MergeBenchMin(a, b *BenchReport) *BenchReport {
	merged := *a
	merged.Results = append([]BenchResult(nil), a.Results...)
	byKey := make(map[string]int, len(merged.Results))
	for i, r := range merged.Results {
		byKey[benchKey(r)] = i
	}
	for _, r := range b.Results {
		if i, ok := byKey[benchKey(r)]; ok {
			if r.NsPerOp < merged.Results[i].NsPerOp {
				merged.Results[i] = r
			}
		} else {
			merged.Results = append(merged.Results, r)
		}
	}
	return &merged
}

// DiffBench compares a fresh run against a baseline, printing one line per
// baseline entry to log, and returns the regression messages (empty means
// the run is clean).  An entry missing from the fresh run is a regression —
// a suite that silently stopped running is not a pass.  Entries only in the
// fresh run are noted but do not fail, so adding benchmarks never breaks an
// older baseline.
func DiffBench(log io.Writer, baseline, fresh *BenchReport, tolerance float64) []string {
	if tolerance <= 0 {
		tolerance = DefaultBenchTolerance
	}
	freshBy := make(map[string]BenchResult, len(fresh.Results))
	for _, r := range fresh.Results {
		freshBy[benchKey(r)] = r
	}
	var regressions []string
	for _, old := range baseline.Results {
		k := benchKey(old)
		now, ok := freshBy[k]
		if !ok {
			regressions = append(regressions, fmt.Sprintf("%s: present in baseline but missing from the fresh run", k))
			fmt.Fprintf(log, "%-10s %-42s (missing from fresh run)\n", "MISSING", k)
			continue
		}
		delete(freshBy, k)
		status := "ok"
		if old.NsPerOp >= benchDiffFloorNs && now.NsPerOp > old.NsPerOp*(1+tolerance) {
			status = "REGRESSION"
			regressions = append(regressions, fmt.Sprintf(
				"%s: %.0f -> %.0f ns/op (%.2fx, allowed %.2fx)",
				k, old.NsPerOp, now.NsPerOp, now.NsPerOp/old.NsPerOp, 1+tolerance))
		}
		if now.AllocsPerOp > old.AllocsPerOp+benchDiffAllocSlack &&
			float64(now.AllocsPerOp) > float64(old.AllocsPerOp)*(1+tolerance) {
			status = "REGRESSION"
			regressions = append(regressions, fmt.Sprintf(
				"%s: %d -> %d allocs/op", k, old.AllocsPerOp, now.AllocsPerOp))
		}
		fmt.Fprintf(log, "%-10s %-42s %12.0f -> %12.0f ns/op %7.2fx  %6d -> %6d allocs/op\n",
			status, k, old.NsPerOp, now.NsPerOp, now.NsPerOp/old.NsPerOp,
			old.AllocsPerOp, now.AllocsPerOp)
	}
	for k := range freshBy {
		fmt.Fprintf(log, "%-10s %-42s (new entry, no baseline)\n", "new", k)
	}
	return regressions
}
