package experiments

import (
	"io"

	"repro/internal/benefit"
	"repro/internal/core"
	"repro/internal/market"
	"repro/internal/stats"
)

func init() {
	register(Experiment{
		ID:    "R-Fig11",
		Title: "online algorithms under random-order worker arrival",
		Expected: "all online policies clear the 0.5 worst-case bound comfortably in the " +
			"random-order model; the two-phase threshold mainly protects the tail — its worst-case " +
			"ratio matches or beats plain online greedy's — echoing the role of the sampling phase " +
			"in the companion GOMA paper's TGOA",
		Run: runFig11,
	})
}

func runFig11(w io.Writer, cfg RunConfig) error {
	reps := cfg.reps(10)
	nw, nt := cfg.pick(300, 60), cfg.pick(200, 40)
	mcfg := market.FreelanceTraceConfig(nw, nt)

	// Part 1: mean and worst competitive ratio per online policy.
	t := newTable(w, "policy", "mean-ratio", "worst-ratio", "coverage")
	type acc struct{ ratio, cover *stats.Running }
	accs := map[string]*acc{}
	for rep := 0; rep < reps; rep++ {
		seed := cfg.Seed + uint64(rep)
		in, err := market.Generate(mcfg, seed)
		if err != nil {
			return err
		}
		p, err := core.NewProblem(in, benefit.DefaultParams())
		if err != nil {
			return err
		}
		_, opt, err := core.Run(p, core.Exact{Kind: core.MutualWeight}, stats.NewRNG(seed))
		if err != nil {
			return err
		}
		for _, s := range core.OnlineSolvers() {
			_, m, err := core.Run(p, s, stats.NewRNG(seed*7+3))
			if err != nil {
				return err
			}
			a := accs[s.Name()]
			if a == nil {
				a = &acc{ratio: stats.NewRunning(), cover: stats.NewRunning()}
				accs[s.Name()] = a
			}
			a.ratio.Add(m.TotalMutual / opt.TotalMutual)
			a.cover.Add(m.SlotCoverage)
		}
	}
	for _, s := range core.OnlineSolvers() {
		a := accs[s.Name()]
		t.row(s.Name(), f3(a.ratio.Mean()), f3(a.ratio.Min()), f3(a.cover.Mean()))
	}
	if err := t.flush(); err != nil {
		return err
	}

	// Part 2: two-phase sample-fraction sweep.
	t2 := newTable(w, "sample-frac", "competitive-ratio")
	for _, frac := range []float64{0.1, 0.25, 0.37, 0.5, 0.7} {
		run := stats.NewRunning()
		for rep := 0; rep < reps; rep++ {
			seed := cfg.Seed + uint64(rep)
			in, err := market.Generate(mcfg, seed)
			if err != nil {
				return err
			}
			p, err := core.NewProblem(in, benefit.DefaultParams())
			if err != nil {
				return err
			}
			_, opt, err := core.Run(p, core.Exact{Kind: core.MutualWeight}, stats.NewRNG(seed))
			if err != nil {
				return err
			}
			_, m, err := core.Run(p, core.OnlineTwoPhase{Kind: core.MutualWeight, SampleFrac: frac}, stats.NewRNG(seed*7+3))
			if err != nil {
				return err
			}
			run.Add(m.TotalMutual / opt.TotalMutual)
		}
		t2.row(f3(frac), f3(run.Mean()))
	}
	return t2.flush()
}
