package experiments

// X-Rob2: recovery time vs. journal length, with and without
// checkpointing.  The flat journal replays its whole history on every
// restart — recovery cost grows linearly with uptime — while the
// checkpointed directory loads the newest snapshot and replays only the
// post-snapshot tail, so recovery stays O(state + tail) no matter how
// long the service has been running.  The runner also enforces the
// bounded-recovery contract directly: at the full journal length the
// checkpointed recovery must replay at most one segment of tail.

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"repro/internal/market"
	"repro/internal/platform"
)

func init() {
	register(Experiment{
		ID:    "X-Rob2",
		Title: "crash recovery time vs. journal length, with and without checkpoints",
		Expected: "flat-journal recovery replays the whole history, so its time grows with uptime; " +
			"checkpointed recovery replays ≤1 segment of tail at every length — its cost is " +
			"O(state + tail), paying only for the live state (snapshot decode), never for history; " +
			"both reconstruct byte-identical states",
		Run: runRob2,
	})
}

func runRob2(w io.Writer, cfg RunConfig) error {
	const numCategories = 30 // market.FreelanceTraceConfig's universe
	total := cfg.pick(50000, 5000)
	// High churn keeps the live state bounded while history keeps growing —
	// the regime where checkpointing pays: state ≪ history.
	events, err := platform.SyntheticTrace(platform.TraceConfig{
		Market:     market.FreelanceTraceConfig(0, 0),
		Events:     total,
		RoundEvery: 50,
		ChurnProb:  0.45,
	}, cfg.Seed)
	if err != nil {
		return err
	}
	dir, err := os.MkdirTemp("", "xrob2-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	fmt.Fprintf(w, "synthetic trace: %d events, round marker every 50, checkpoint every 20 rounds\n", total)
	t := newTable(w, "events", "flat-replayed", "flat-time", "ckpt-replayed", "ckpt-segments", "ckpt-time")
	for _, n := range []int{total / 5, total / 2, total} {
		subset := events[:n]

		// Baseline: one flat JSONL journal, replayed from genesis.
		flatPath := filepath.Join(dir, fmt.Sprintf("flat-%d.jsonl", n))
		f, err := os.Create(flatPath)
		if err != nil {
			return err
		}
		flatLog := platform.NewLog(f)
		for _, e := range subset {
			if err := flatLog.Append(e); err != nil {
				f.Close()
				return err
			}
		}
		if err := f.Close(); err != nil {
			return err
		}
		rf, err := os.Open(flatPath)
		if err != nil {
			return err
		}
		start := time.Now()
		flatState, replayErr, dropped := platform.RecoverLog(numCategories, rf)
		flatTime := time.Since(start)
		rf.Close()
		if replayErr != nil {
			return replayErr
		}
		if dropped != nil {
			return fmt.Errorf("flat journal unexpectedly torn: %w", dropped)
		}

		// Checkpointed: segmented journal + snapshot every 20 rounds, the
		// mbaserve -snapshot-dir configuration.
		ckptDir := filepath.Join(dir, fmt.Sprintf("ckpt-%d", n))
		state, err := platform.NewState(numCategories)
		if err != nil {
			return err
		}
		seg, err := platform.OpenSegmentedLog(ckptDir, platform.SegmentOptions{MaxBytes: 8 << 20})
		if err != nil {
			return err
		}
		cm, err := platform.NewCheckpointManager(state, seg, platform.CheckpointOptions{EveryRounds: 20, Keep: 2})
		if err != nil {
			return err
		}
		for _, e := range subset {
			if _, err := state.ApplyJournaled(e, seg.Append); err != nil {
				return err
			}
			if e.Kind == platform.EventRoundClosed {
				if _, err := cm.RoundClosed(); err != nil {
					return err
				}
			}
		}
		start = time.Now()
		ckptState, info, err := platform.RecoverDir(ckptDir, numCategories)
		ckptTime := time.Since(start)
		if err != nil {
			return err
		}

		// Both paths must land on the same state, byte for byte.
		var a, b bytes.Buffer
		if _, err := flatState.EncodeSnapshot(&a); err != nil {
			return err
		}
		if _, err := ckptState.EncodeSnapshot(&b); err != nil {
			return err
		}
		if !bytes.Equal(a.Bytes(), b.Bytes()) {
			return fmt.Errorf("at %d events: flat and checkpointed recovery disagree", n)
		}
		// The bounded-recovery contract this experiment exists to assert:
		// with checkpoints, recovery replays at most one segment of tail.
		if info.SegmentsReplayed > 1 {
			return fmt.Errorf("at %d events: checkpointed recovery replayed %d segments, want ≤ 1",
				n, info.SegmentsReplayed)
		}
		if err := seg.Close(); err != nil {
			return err
		}

		t.row(fmt.Sprintf("%d", n),
			fmt.Sprintf("%d", n),
			flatTime.Round(time.Microsecond).String(),
			fmt.Sprintf("%d", info.EventsReplayed),
			fmt.Sprintf("%d", info.SegmentsReplayed),
			ckptTime.Round(time.Microsecond).String())
	}
	return t.flush()
}
