package experiments

// Extension/ablation experiments (X-Abl*): not reconstructions of paper
// figures but measurements of this implementation's own design choices,
// called out in DESIGN.md §9.  They follow the same runner contract as the
// R-* experiments so cmd/mbabench regenerates everything uniformly.

import (
	"fmt"
	"io"
	"runtime"
	"time"

	"repro/internal/benefit"
	"repro/internal/core"
	"repro/internal/dynamics"
	"repro/internal/market"
	"repro/internal/pricing"
	"repro/internal/stats"
)

func init() {
	register(Experiment{
		ID:    "X-Abl1",
		Title: "refinement ablation: greedy vs. local-search vs. annealing vs. exact",
		Expected: "local-search's rotate move recovers most of the greedy/exact gap at ~4x greedy " +
			"cost; annealing matches local-search only with a far larger time budget — the " +
			"deterministic search is the right default",
		Run: runAbl1,
	})
	register(Experiment{
		ID:    "X-Abl2",
		Title: "sharded parallel greedy: quality and wall-clock vs. shard count",
		Expected: "reconciliation keeps quality within ~1% of sequential greedy at every shard " +
			"count; wall-clock falls with shards only when GOMAXPROCS > 1 (the table reports the " +
			"host's parallelism — on a single-core host the sharding is pure constant overhead)",
		Run: runAbl2,
	})
	register(Experiment{
		ID:    "X-Abl3",
		Title: "incremental repair vs. full recompute under market churn",
		Expected: "per-event repair is orders of magnitude cheaper than recomputing greedy from " +
			"scratch while the standing value stays within a few percent of batch greedy",
		Run: runAbl3,
	})
	register(Experiment{
		ID:    "X-Abl5",
		Title: "stability vs. efficiency: deferred acceptance against the optimisers",
		Expected: "stable matching has zero blocking pairs by construction but gives up total " +
			"mutual benefit; the benefit-maximising algorithms leave blocking pairs behind — the " +
			"two goals genuinely trade off",
		Run: runAbl5,
	})
	register(Experiment{
		ID:    "X-Abl6",
		Title: "quality SLA: per-pair quality floor vs. coverage and worker benefit",
		Expected: "raising the quality floor raises mean pair quality monotonically while coverage " +
			"and worker-side benefit fall — the SLA knob moves along the same frontier as lambda but " +
			"by exclusion rather than weighting",
		Run: runAbl6,
	})
	register(Experiment{
		ID:    "X-Abl7",
		Title: "price of participation: payment multiplier vs. retention and surplus",
		Expected: "raising payments grows the surplus fraction (pairs paying above reservation) " +
			"monotonically and retention/cumulative benefit upward up to simulation noise, with " +
			"diminishing returns once most pairs clear the bar — the operator's pricing frontier",
		Run: runAbl7,
	})
	register(Experiment{
		ID:    "X-Abl9",
		Title: "seed robustness: does the headline ordering survive 20 workloads?",
		Expected: "the paper's core orderings — mutual beats quality-only on combined benefit, " +
			"quality-only beats mutual on the quality column, both beat random — hold on (nearly) " +
			"every seed, not just the headline one; win counts are reported per claim",
		Run: runAbl9,
	})
	register(Experiment{
		ID:    "X-Abl8",
		Title: "two-tier expert market: who gets the work under each policy",
		Expected: "with demand scarce enough for the expert cadre to absorb it, quality-only " +
			"routes the lion's share to experts and activates the fewest generalists; " +
			"mutual-benefit assignment spreads work down the tiers at a small quality cost; " +
			"worker-only ignores expertise entirely",
		Run: runAbl8,
	})
	register(Experiment{
		ID:    "X-Abl4",
		Title: "skill growth (learning-by-doing) compounding over rounds",
		Expected: "with growth enabled, workforce accuracy climbs toward the cap and cumulative " +
			"platform benefit compounds over the static baseline",
		Run: runAbl4,
	})
}

func runAbl1(w io.Writer, cfg RunConfig) error {
	reps := cfg.reps(3)
	nw, nt := cfg.pick(250, 50), cfg.pick(180, 40)
	solvers := []core.Solver{
		core.Greedy{Kind: core.MutualWeight},
		core.LocalSearch{Kind: core.MutualWeight},
		core.SimulatedAnnealing{Kind: core.MutualWeight},
		core.Exact{Kind: core.MutualWeight},
	}
	type agg struct {
		ratio *stats.Running
		time  time.Duration
	}
	accs := map[string]*agg{}
	for rep := 0; rep < reps; rep++ {
		seed := cfg.Seed + uint64(rep)
		in, err := market.Generate(market.FreelanceTraceConfig(nw, nt), seed)
		if err != nil {
			return err
		}
		p, err := core.NewProblem(in, benefit.DefaultParams())
		if err != nil {
			return err
		}
		_, opt, err := core.Run(p, core.Exact{Kind: core.MutualWeight}, stats.NewRNG(seed))
		if err != nil {
			return err
		}
		for _, s := range solvers {
			_, m, err := core.Run(p, s, stats.NewRNG(seed))
			if err != nil {
				return err
			}
			a := accs[s.Name()]
			if a == nil {
				a = &agg{ratio: stats.NewRunning()}
				accs[s.Name()] = a
			}
			a.ratio.Add(m.TotalMutual / opt.TotalMutual)
			a.time += m.Elapsed
		}
	}
	t := newTable(w, "algorithm", "ratio-vs-exact", "mean-time")
	for _, s := range solvers {
		a := accs[s.Name()]
		t.row(s.Name(), f3(a.ratio.Mean()), (a.time / time.Duration(reps)).Round(time.Microsecond).String())
	}
	return t.flush()
}

func runAbl2(w io.Writer, cfg RunConfig) error {
	nw, nt := cfg.pick(3000, 150), cfg.pick(2000, 100)
	in, err := market.Generate(market.FreelanceTraceConfig(nw, nt), cfg.Seed)
	if err != nil {
		return err
	}
	p, err := core.NewProblem(in, benefit.DefaultParams())
	if err != nil {
		return err
	}
	_, base, err := core.Run(p, core.Greedy{Kind: core.MutualWeight}, stats.NewRNG(cfg.Seed))
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "host parallelism: GOMAXPROCS=%d\n", runtime.GOMAXPROCS(0))
	t := newTable(w, "shards", "value-ratio-vs-greedy", "time", "greedy-time")
	for _, shards := range []int{1, 2, 4, 8} {
		_, m, err := core.Run(p, core.ShardedGreedy{Kind: core.MutualWeight, Shards: shards}, stats.NewRNG(cfg.Seed))
		if err != nil {
			return err
		}
		t.row(shards, f3(m.TotalMutual/base.TotalMutual),
			m.Elapsed.Round(time.Microsecond).String(),
			base.Elapsed.Round(time.Microsecond).String())
	}
	return t.flush()
}

func runAbl3(w io.Writer, cfg RunConfig) error {
	events := cfg.pick(400, 80)
	r := stats.NewRNG(cfg.Seed)
	inc, err := core.NewIncremental(8, 20, benefit.DefaultParams())
	if err != nil {
		return err
	}
	randWorker := func() market.Worker {
		wk := market.Worker{
			Capacity:        r.IntRange(1, 3),
			Accuracy:        make([]float64, 8),
			Interest:        make([]float64, 8),
			ReservationWage: r.Float64Range(0, 5),
		}
		for c := 0; c < 8; c++ {
			wk.Accuracy[c] = r.Float64Range(0.5, 0.95)
			wk.Interest[c] = r.Float64()
		}
		n := r.IntRange(1, 3)
		wk.Specialties = r.Perm(8)[:n]
		return wk
	}
	randTask := func() market.Task {
		return market.Task{
			Category:    r.Intn(8),
			Replication: r.IntRange(1, 3),
			Payment:     r.Float64Range(1, 20),
			Difficulty:  r.Float64Range(0, 0.7),
		}
	}

	var workerIDs, taskIDs []int
	var incTime, batchTime time.Duration
	var liveWorkers []market.Worker
	var liveTasks []market.Task
	batchValue := 0.0
	for ev := 0; ev < events; ev++ {
		kind := r.Intn(5)
		start := time.Now()
		switch {
		case kind <= 1 || len(workerIDs) == 0:
			wk := randWorker()
			id, err := inc.AddWorker(wk)
			if err != nil {
				return err
			}
			workerIDs = append(workerIDs, id)
			liveWorkers = append(liveWorkers, wk)
		case kind <= 3 || len(taskIDs) == 0:
			tk := randTask()
			id, err := inc.AddTask(tk)
			if err != nil {
				return err
			}
			taskIDs = append(taskIDs, id)
			liveTasks = append(liveTasks, tk)
		default:
			i := r.Intn(len(workerIDs))
			if err := inc.RemoveWorker(workerIDs[i]); err != nil {
				return err
			}
			workerIDs = append(workerIDs[:i], workerIDs[i+1:]...)
			liveWorkers = append(liveWorkers[:i], liveWorkers[i+1:]...)
		}
		incTime += time.Since(start)

		// Full recompute baseline on the same live market.
		start = time.Now()
		if len(liveWorkers) > 0 && len(liveTasks) > 0 {
			in := &market.Instance{Name: "churn", NumCategories: 8, MaxPayment: 20}
			for i, wk := range liveWorkers {
				wk.ID = i
				in.Workers = append(in.Workers, wk)
			}
			for j, tk := range liveTasks {
				tk.ID = j
				in.Tasks = append(in.Tasks, tk)
			}
			p, err := core.NewProblem(in, benefit.DefaultParams())
			if err != nil {
				return err
			}
			sel, err := (core.Greedy{Kind: core.MutualWeight}).Solve(p, nil)
			if err != nil {
				return err
			}
			batchValue = p.Evaluate(sel).TotalMutual
		}
		batchTime += time.Since(start)
	}

	t := newTable(w, "metric", "incremental", "recompute")
	t.row("total time for "+fmt.Sprint(events)+" events",
		incTime.Round(time.Millisecond).String(), batchTime.Round(time.Millisecond).String())
	t.row("mean time per event",
		(incTime / time.Duration(events)).Round(time.Microsecond).String(),
		(batchTime / time.Duration(events)).Round(time.Microsecond).String())
	t.row("final value", f2(inc.Value()), f2(batchValue))
	if batchValue > 0 {
		t.row("final value ratio", f3(inc.Value()/batchValue), "1.000")
	}
	return t.flush()
}

func runAbl5(w io.Writer, cfg RunConfig) error {
	reps := cfg.reps(3)
	nw, nt := cfg.pick(300, 60), cfg.pick(200, 40)
	solvers := []core.Solver{
		core.StableMatching{},
		core.Exact{Kind: core.MutualWeight},
		core.Greedy{Kind: core.MutualWeight},
		core.QualityOnly(),
		core.Random{},
	}
	type agg struct {
		mutual   *stats.Running
		blocking *stats.Running
	}
	accs := map[string]*agg{}
	for rep := 0; rep < reps; rep++ {
		seed := cfg.Seed + uint64(rep)
		in, err := market.Generate(market.FreelanceTraceConfig(nw, nt), seed)
		if err != nil {
			return err
		}
		p, err := core.NewProblem(in, benefit.DefaultParams())
		if err != nil {
			return err
		}
		for _, s := range solvers {
			sel, m, err := core.Run(p, s, stats.NewRNG(seed))
			if err != nil {
				return err
			}
			a := accs[s.Name()]
			if a == nil {
				a = &agg{mutual: stats.NewRunning(), blocking: stats.NewRunning()}
				accs[s.Name()] = a
			}
			a.mutual.Add(m.TotalMutual)
			a.blocking.Add(float64(core.BlockingPairs(p, sel)))
		}
	}
	t := newTable(w, "algorithm", "mutual-benefit", "blocking-pairs")
	for _, s := range solvers {
		a := accs[s.Name()]
		t.row(s.Name(), f2(a.mutual.Mean()), f2(a.blocking.Mean()))
	}
	return t.flush()
}

func runAbl6(w io.Writer, cfg RunConfig) error {
	reps := cfg.reps(3)
	nw, nt := cfg.pick(400, 60), cfg.pick(300, 40)
	t := newTable(w, "min-quality", "pairs", "mean-quality", "worker-benefit", "coverage")
	for _, floor := range []float64{0, 0.2, 0.4, 0.6, 0.8} {
		var pairs, meanQ, workerB, cover float64
		for rep := 0; rep < reps; rep++ {
			seed := cfg.Seed + uint64(rep)
			in, err := market.Generate(market.FreelanceTraceConfig(nw, nt), seed)
			if err != nil {
				return err
			}
			p, err := core.NewProblem(in, benefit.DefaultParams())
			if err != nil {
				return err
			}
			fp := core.FilterProblem(p, core.MinQuality(floor))
			_, m, err := core.Run(fp, core.Greedy{Kind: core.MutualWeight}, stats.NewRNG(seed))
			if err != nil {
				return err
			}
			pairs += float64(m.Pairs)
			if m.Pairs > 0 {
				meanQ += m.TotalQuality / float64(m.Pairs)
			}
			workerB += m.TotalWorker
			cover += m.SlotCoverage
		}
		n := float64(reps)
		t.row(f3(floor), int(pairs/n+0.5), f3(meanQ/n), f2(workerB/n), f3(cover/n))
	}
	return t.flush()
}

func runAbl7(w io.Writer, cfg RunConfig) error {
	dcfg := dynamics.Config{
		Rounds: cfg.pick(15, 5),
		Market: market.Config{NumWorkers: cfg.pick(150, 50), NumTasks: cfg.pick(100, 40)},
		Params: benefit.DefaultParams(),
		Solver: core.Greedy{Kind: core.MutualWeight},
	}
	multipliers := []float64{0.25, 0.5, 1, 2, 4}
	curve, err := pricing.RetentionCurve(dcfg, multipliers, cfg.Seed)
	if err != nil {
		return err
	}
	t := newTable(w, "multiplier", "surplus-fraction", "final-participation", "cumulative-benefit")
	for i, pt := range curve {
		in, err := market.Generate(dcfg.Market, cfg.Seed)
		if err != nil {
			return err
		}
		sf := pricing.SurplusFraction(pricing.ScalePayments(in, multipliers[i]))
		t.row(f3(pt.Multiplier), f3(sf), f3(pt.FinalParticipation), f2(pt.CumulativeBenefit))
	}
	return t.flush()
}

func runAbl9(w io.Writer, cfg RunConfig) error {
	seeds := cfg.pick(20, 6)
	nw, nt := cfg.pick(300, 60), cfg.pick(200, 40)
	type claim struct {
		name string
		test func(mutual, qualityOnly, random core.Metrics) bool
	}
	claims := []claim{
		{"mutual > quality-only on combined benefit", func(m, q, r core.Metrics) bool {
			return m.TotalMutual > q.TotalMutual
		}},
		{"quality-only ≥ mutual on quality column", func(m, q, r core.Metrics) bool {
			return q.TotalQuality >= m.TotalQuality
		}},
		{"mutual > quality-only on worker benefit", func(m, q, r core.Metrics) bool {
			return m.TotalWorker > q.TotalWorker
		}},
		{"mutual > random on combined benefit", func(m, q, r core.Metrics) bool {
			return m.TotalMutual > r.TotalMutual
		}},
		{"quality-only > random on quality", func(m, q, r core.Metrics) bool {
			return q.TotalQuality > r.TotalQuality
		}},
	}
	wins := make([]int, len(claims))
	for s := 0; s < seeds; s++ {
		seed := cfg.Seed + uint64(s)*7919
		in, err := market.Generate(market.FreelanceTraceConfig(nw, nt), seed)
		if err != nil {
			return err
		}
		p, err := core.NewProblem(in, benefit.DefaultParams())
		if err != nil {
			return err
		}
		_, mu, err := core.Run(p, core.Exact{Kind: core.MutualWeight}, stats.NewRNG(seed))
		if err != nil {
			return err
		}
		_, qo, err := core.Run(p, core.QualityOnly(), stats.NewRNG(seed))
		if err != nil {
			return err
		}
		_, rnd, err := core.Run(p, core.Random{}, stats.NewRNG(seed))
		if err != nil {
			return err
		}
		for i, c := range claims {
			if c.test(mu, qo, rnd) {
				wins[i]++
			}
		}
	}
	t := newTable(w, "claim", "holds-on", "out-of")
	for i, c := range claims {
		t.row(c.name, wins[i], seeds)
	}
	return t.flush()
}

func runAbl8(w io.Writer, cfg RunConfig) error {
	reps := cfg.reps(3)
	// Demand is deliberately scarce (~slots ≈ expert capacity) so policy
	// differences are not masked by everyone saturating the expert tier.
	nw, nt := cfg.pick(400, 80), cfg.pick(50, 12)
	const expertFrac = 0.2
	solvers := []core.Solver{
		core.Exact{Kind: core.MutualWeight},
		core.Greedy{Kind: core.MutualWeight},
		core.QualityOnly(),
		core.WorkerOnly(),
	}
	t := newTable(w, "algorithm", "expert-share", "active-generalists", "mean-quality", "starved-cats", "jain")
	for _, s := range solvers {
		var expertShare, quality, jain float64
		var activeGen, starved int
		for rep := 0; rep < reps; rep++ {
			seed := cfg.Seed + uint64(rep)
			in := market.ClusteredMarket(nw, nt, expertFrac, seed)
			p, err := core.NewProblem(in, benefit.DefaultParams())
			if err != nil {
				return err
			}
			sel, m, err := core.Run(p, s, stats.NewRNG(seed))
			if err != nil {
				return err
			}
			nExperts := int(float64(nw)*expertFrac + 0.5)
			expertPairs := 0
			genActive := map[int]bool{}
			for _, ei := range sel {
				if e := &p.Edges[ei]; e.W < nExperts {
					expertPairs++
				} else {
					genActive[e.W] = true
				}
			}
			if len(sel) > 0 {
				expertShare += float64(expertPairs) / float64(len(sel))
				quality += m.TotalQuality / float64(len(sel))
			}
			activeGen += len(genActive)
			starved += len(p.StarvedCategories(sel, 0.5))
			jain += m.WorkerJain
		}
		n := float64(reps)
		t.row(s.Name(), f3(expertShare/n), int(float64(activeGen)/n+0.5),
			f3(quality/n), int(float64(starved)/n+0.5), f3(jain/n))
	}
	return t.flush()
}

func runAbl4(w io.Writer, cfg RunConfig) error {
	rounds := cfg.pick(20, 6)
	mcfg := market.Config{NumWorkers: cfg.pick(150, 50), NumTasks: cfg.pick(100, 40)}
	t := newTable(w, "skill-growth", "final-accuracy", "cumulative-benefit", "final-participation")
	for _, growth := range []float64{0, 0.05, 0.15} {
		rep, err := dynamics.Simulate(dynamics.Config{
			Rounds:      rounds,
			Market:      mcfg,
			Params:      benefit.DefaultParams(),
			Solver:      core.Greedy{Kind: core.MutualWeight},
			SkillGrowth: growth,
		}, cfg.Seed)
		if err != nil {
			return err
		}
		last := rep.Rounds[len(rep.Rounds)-1]
		t.row(f3(growth), f3(last.MeanSpecAccuracy), f2(rep.TotalMutual), f3(rep.FinalParticipation))
	}
	return t.flush()
}
