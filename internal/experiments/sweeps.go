package experiments

import (
	"io"

	"repro/internal/benefit"
	"repro/internal/core"
	"repro/internal/market"
	"repro/internal/stats"
)

func init() {
	register(Experiment{
		ID:    "R-Fig6",
		Title: "requester/worker benefit split vs. trade-off lambda",
		Expected: "raising lambda trades worker benefit for quality along a smooth frontier; " +
			"quality-only is the lambda=1 corner — its worker column shows the collapse the paper warns about",
		Run: runFig6,
	})
	register(Experiment{
		ID:    "R-Fig7",
		Title: "total mutual benefit vs. demand skew theta (broad workforce)",
		Expected: "with worker skills held broad, concentrating task demand on few categories " +
			"saturates the matching capacity there and shrinks everyone's benefit; the ordering " +
			"exact ≥ greedy > quality-only > random persists at every skew",
		Run: runFig7,
	})
	register(Experiment{
		ID:    "R-Fig8",
		Title: "total mutual benefit vs. worker capacity and task replication",
		Expected: "benefit grows with either capacity knob until the other side's budget binds; " +
			"the greedy/exact gap stays small at every setting",
		Run: runFig8,
	})
}

func runFig6(w io.Writer, cfg RunConfig) error {
	mcfg := market.FreelanceTraceConfig(cfg.pick(400, 80), cfg.pick(300, 60))
	reps := cfg.reps(3)
	lambdas := []float64{0, 0.2, 0.4, 0.5, 0.6, 0.8, 1.0}
	t := newTable(w, "lambda", "quality-sum", "worker-sum", "jain", "active-workers")
	for _, l := range lambdas {
		params := benefit.Params{Lambda: l, Beta: 0.5}
		var q, b, jain float64
		var active int
		for rep := 0; rep < reps; rep++ {
			seed := cfg.Seed + uint64(rep)
			in, err := market.Generate(mcfg, seed)
			if err != nil {
				return err
			}
			p, err := core.NewProblem(in, params)
			if err != nil {
				return err
			}
			_, m, err := core.Run(p, core.Exact{Kind: core.MutualWeight}, stats.NewRNG(seed))
			if err != nil {
				return err
			}
			q += m.TotalQuality
			b += m.TotalWorker
			jain += m.WorkerJain
			active += m.ActiveWorkers
		}
		n := float64(reps)
		t.row(f3(l), f2(q/n), f2(b/n), f3(jain/n), int(float64(active)/n+0.5))
	}
	return t.flush()
}

func runFig7(w io.Writer, cfg RunConfig) error {
	nw, nt := cfg.pick(400, 80), cfg.pick(300, 60)
	reps := cfg.reps(3)
	thetas := []float64{0, 0.3, 0.6, 0.9, 1.2, 1.5}
	solvers := []core.Solver{
		core.Exact{Kind: core.MutualWeight},
		core.Greedy{Kind: core.MutualWeight},
		core.QualityOnly(),
		core.Random{},
	}
	headers := []string{"theta"}
	for _, s := range solvers {
		headers = append(headers, s.Name())
	}
	t := newTable(w, headers...)
	// Worker specialties stay uniform while task demand concentrates —
	// the demand-shock regime where skew actually hurts (a workforce that
	// perfectly tracked demand would neutralise it; see market.Config).
	broad := 0.0
	for _, theta := range thetas {
		mcfg := market.ZipfConfig(nw, nt, theta)
		mcfg.WorkerSkew = &broad
		row := []interface{}{f3(theta)}
		for _, s := range solvers {
			ms, err := repeatMetrics(mcfg, benefit.DefaultParams(), s, cfg.Seed, reps)
			if err != nil {
				return err
			}
			row = append(row, f2(stats.Mean(mutualValues(ms))))
		}
		t.row(row...)
	}
	return t.flush()
}

func runFig8(w io.Writer, cfg RunConfig) error {
	nw, nt := cfg.pick(300, 60), cfg.pick(200, 40)
	reps := cfg.reps(3)
	caps := []int{1, 2, 4, 8}
	solvers := []core.Solver{
		core.Exact{Kind: core.MutualWeight},
		core.Greedy{Kind: core.MutualWeight},
	}

	run := func(t *table, label string, mk func(v int) market.Config) error {
		for _, v := range caps {
			row := []interface{}{label, v}
			for _, s := range solvers {
				ms, err := repeatMetrics(mk(v), benefit.DefaultParams(), s, cfg.Seed, reps)
				if err != nil {
					return err
				}
				row = append(row, f2(stats.Mean(mutualValues(ms))))
			}
			t.row(row...)
		}
		return nil
	}
	t := newTable(w, "knob", "value", "exact", "greedy")
	if err := run(t, "capacity", func(c int) market.Config {
		m := market.UniformConfig(nw, nt)
		m.MinCapacity, m.MaxCapacity = c, c
		return m
	}); err != nil {
		return err
	}
	if err := run(t, "replication", func(k int) market.Config {
		m := market.UniformConfig(nw, nt)
		m.MinReplication, m.MaxReplication = k, k
		return m
	}); err != nil {
		return err
	}
	return t.flush()
}
