package experiments

import (
	"io"

	"repro/internal/benefit"
	"repro/internal/core"
	"repro/internal/market"
	"repro/internal/stats"
)

func init() {
	register(Experiment{
		ID:    "R-Fig4",
		Title: "total mutual benefit vs. number of tasks",
		Expected: "all curves grow with task supply; exact ≥ local-search ≥ greedy > quality-only > " +
			"random throughout; the mutual/quality-only gap widens as tasks (choice) grow",
		Run: runFig4,
	})
	register(Experiment{
		ID:    "R-Fig5",
		Title: "total mutual benefit vs. number of workers",
		Expected: "curves grow then saturate once worker capacity exceeds task slots; ordering as in " +
			"R-Fig4",
		Run: runFig5,
	})
}

// scaleLineUp is the algorithm series plotted in the scale figures.
func scaleLineUp() []core.Solver {
	return []core.Solver{
		core.Exact{Kind: core.MutualWeight},
		core.LocalSearch{Kind: core.MutualWeight},
		core.Greedy{Kind: core.MutualWeight},
		core.QualityOnly(),
		core.WorkerOnly(),
		core.Random{},
	}
}

// runScaleSweep renders one series table: rows = sweep values, columns =
// algorithms, cells = mean TotalMutual over reps.
func runScaleSweep(w io.Writer, cfg RunConfig, axis string, values []int, mk func(v int) market.Config) error {
	reps := cfg.reps(3)
	solvers := scaleLineUp()
	headers := []string{axis}
	for _, s := range solvers {
		headers = append(headers, s.Name())
	}
	t := newTable(w, headers...)
	for _, v := range values {
		row := []interface{}{v}
		for _, s := range solvers {
			ms, err := repeatMetrics(mk(v), benefit.DefaultParams(), s, cfg.Seed, reps)
			if err != nil {
				return err
			}
			row = append(row, f2(stats.Mean(mutualValues(ms))))
		}
		t.row(row...)
	}
	return t.flush()
}

func runFig4(w io.Writer, cfg RunConfig) error {
	var tasks []int
	if cfg.Quick {
		tasks = []int{40, 80, 120}
	} else {
		tasks = []int{200, 400, 800, 1200, 1600}
	}
	workers := cfg.pick(600, 80)
	return runScaleSweep(w, cfg, "tasks", tasks, func(m int) market.Config {
		return market.FreelanceTraceConfig(workers, m)
	})
}

func runFig5(w io.Writer, cfg RunConfig) error {
	var workers []int
	if cfg.Quick {
		workers = []int{40, 80, 120}
	} else {
		workers = []int{150, 300, 600, 1200, 2000}
	}
	tasks := cfg.pick(400, 60)
	return runScaleSweep(w, cfg, "workers", workers, func(n int) market.Config {
		return market.FreelanceTraceConfig(n, tasks)
	})
}
