package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestTableRendersAligned(t *testing.T) {
	var buf bytes.Buffer
	tab := newTable(&buf, "name", "value")
	tab.row("alpha", 1.5)
	tab.row("a-much-longer-name", 22)
	if err := tab.flush(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 4 { // header + rule + 2 rows
		t.Fatalf("lines = %d:\n%s", len(lines), buf.String())
	}
	// Tabwriter alignment: the "value" column starts at the same offset in
	// every line.
	col := strings.Index(lines[0], "value")
	if col < 0 {
		t.Fatal("header lost")
	}
	if !strings.HasPrefix(lines[2][col:], "1.5") {
		t.Fatalf("misaligned row: %q", lines[2])
	}
}

func TestTableFormatsFloats(t *testing.T) {
	var buf bytes.Buffer
	tab := newTable(&buf, "x")
	tab.row(0.123456789)
	tab.flush()
	if !strings.Contains(buf.String(), "0.1235") {
		t.Fatalf("float not rendered at 4 decimals:\n%s", buf.String())
	}
}

func TestFormatterHelpers(t *testing.T) {
	if f2(1.005) != "1.00" && f2(1.005) != "1.01" { // fp rounding either way
		t.Fatalf("f2 = %q", f2(1.005))
	}
	if f3(0.1) != "0.100" {
		t.Fatalf("f3 = %q", f3(0.1))
	}
	if got := pm(10.5, 0.25); got != "10.50±0.25" {
		t.Fatalf("pm = %q", got)
	}
}

func TestRunConfigHelpers(t *testing.T) {
	full := RunConfig{Seed: 1}
	quick := RunConfig{Seed: 1, Quick: true}
	if full.pick(100, 10) != 100 || quick.pick(100, 10) != 10 {
		t.Fatal("pick wrong")
	}
	if full.reps(3) != 3 {
		t.Fatal("default reps wrong")
	}
	if (RunConfig{Reps: 7}).reps(3) != 7 {
		t.Fatal("explicit reps ignored")
	}
}
