package experiments

// The "overload" suite: the admission-controlled serving path under a
// seeded open-loop LoadStorm at 1×, 2× and 4× of its sustained write
// capacity.  Per multiplier it records three entries against a live
// in-process HTTP server (admission on, single-event writes at
// RateMedium = overloadCapacity):
//
//   - "admitted-p50-us" / "admitted-p99-us": latency percentiles of the
//     requests the controller admitted, in MICROSECONDS (not ns — see
//     below) carried in the ns_per_op column.
//   - "shed-per-1000": the shed fraction ×1000 (0 = nothing shed,
//     1000 = everything shed) carried in the ns_per_op column.
//
// The entries deliberately misuse ns_per_op as a plain metric column and
// scale themselves below benchDiffFloorNs: latency under deliberate
// overload on a shared runner is exactly the "scheduler noise exceeds
// any reasonable tolerance" regime the floor exists for, so the suite is
// tracked (and gated on silently-disappearing entries) without wall-
// clock-gating it.  The hard latency/shed guarantees live in the chaos
// storm (`make chaos`), which asserts them against real deadlines.
//
// Checked in as BENCH_overload.json.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"time"

	"repro/internal/benefit"
	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/market"
	"repro/internal/platform"
)

const (
	// overloadCapacity is the sustained single-event write budget
	// (RateMedium) the storms are scaled against, in requests/second.
	overloadCapacity = 400.0
	// overloadStormTime is how long each multiplier's storm runs.
	overloadStormTime = 1200 * time.Millisecond
	// overloadTimeout is the per-request deadline; the deadline-aware
	// queue sheds what it cannot serve within it.
	overloadTimeout = 250 * time.Millisecond
)

// runOverloadSuite storms an admission-enabled server at rising
// multiples of its write capacity and records admitted-latency
// percentiles and the shed fraction per multiplier.
func runOverloadSuite(log io.Writer, cfg BenchConfig, rep *BenchReport) error {
	// Worker templates for the POST bodies; IDs are platform-assigned.
	in, err := market.Generate(market.FreelanceTraceConfig(64, 8), cfg.Seed)
	if err != nil {
		return err
	}
	state, err := platform.NewState(in.NumCategories)
	if err != nil {
		return err
	}
	svc, err := platform.NewService(state, core.Greedy{Kind: core.MutualWeight, WS: &core.Workspace{}},
		benefit.DefaultParams(), nil, cfg.Seed)
	if err != nil {
		return err
	}
	opts := platform.NewServerOptions()
	opts.RequestTimeout = overloadTimeout
	opts.Admission = platform.NewAdmissionOptions()
	opts.Admission.RateMedium = overloadCapacity
	opts.Admission.Seed = cfg.Seed
	ts := httptest.NewServer(platform.NewServerWithOptions(svc, opts))
	defer ts.Close()

	client := &http.Client{
		Transport: &http.Transport{MaxIdleConnsPerHost: 256},
		Timeout:   4 * overloadTimeout,
	}
	bodies := make([][]byte, len(in.Workers))
	for i, w := range in.Workers {
		w.ID = 0 // platform-assigned
		if bodies[i], err = json.Marshal(w); err != nil {
			return err
		}
	}
	do := func(i int) faultinject.LoadStormOutcome {
		req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/workers",
			bytes.NewReader(bodies[i%len(bodies)]))
		if err != nil {
			return faultinject.LoadError
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := client.Do(req)
		if err != nil {
			return faultinject.LoadError
		}
		defer resp.Body.Close()
		io.Copy(io.Discard, resp.Body)
		switch resp.StatusCode {
		case http.StatusCreated:
			return faultinject.LoadAdmitted
		case http.StatusTooManyRequests:
			return faultinject.LoadShed
		default:
			return faultinject.LoadError
		}
	}

	add := func(sc BenchScale, name string, iters int, value float64) {
		rep.Results = append(rep.Results, BenchResult{
			Suite: "overload", Name: name, Scale: sc.Name,
			Iterations: iters, NsPerOp: value,
		})
		fmt.Fprintf(log, "%-13s %-8s %-20s %14.0f\n", "overload", sc.Name, name, value)
	}

	for _, mult := range []float64{1, 2, 4} {
		sc := BenchScale{Name: fmt.Sprintf("%gx", mult)}
		storm := faultinject.RunLoadStorm(context.Background(), faultinject.LoadStormConfig{
			Rate:        overloadCapacity * mult,
			Duration:    overloadStormTime,
			Seed:        cfg.Seed,
			Jitter:      0.2,
			MaxInFlight: 1024,
		}, do)
		if storm.Errors > 0 {
			return fmt.Errorf("experiments: overload %s: %d requests failed outside the 201/429 contract",
				sc.Name, storm.Errors)
		}
		if storm.Admitted == 0 {
			return fmt.Errorf("experiments: overload %s: storm admitted nothing", sc.Name)
		}
		add(sc, "admitted-p50-us", storm.Issued, float64(storm.Percentile(50).Microseconds()))
		add(sc, "admitted-p99-us", storm.Issued, float64(storm.Percentile(99).Microseconds()))
		shed := 0.0
		if storm.Issued > 0 {
			shed = float64(storm.Shed) / float64(storm.Issued)
		}
		add(sc, "shed-per-1000", storm.Issued, shed*1000)
		// Let the brownout shed signal decay and the AIMD limiter recover
		// before the next multiplier, so each storm starts from a healthy
		// controller rather than inheriting the previous storm's backoff.
		time.Sleep(2 * opts.Admission.BrownoutHalflife)
	}
	return nil
}
