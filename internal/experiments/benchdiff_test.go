package experiments

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func diffReport(results ...BenchResult) *BenchReport {
	return &BenchReport{Schema: BenchSchema, Suites: []string{"solve"}, Results: results}
}

func slowEntry(name string, ns float64, allocs int64) BenchResult {
	return BenchResult{Suite: "solve", Name: name, Scale: "small", NsPerOp: ns, AllocsPerOp: allocs, Iterations: 1}
}

// TestDiffBench exercises the regression gate entry by entry: within
// tolerance passes, beyond tolerance fails, sub-floor noise is exempt,
// alloc blow-ups fail even when ns/op is fine, missing entries fail, and
// new entries do not.
func TestDiffBench(t *testing.T) {
	baseline := diffReport(
		slowEntry("steady", 1e6, 10),
		slowEntry("regressed", 1e6, 10),
		slowEntry("noisy-fast", 1e3, 2),
		slowEntry("alloc-blowup", 1e6, 2),
		slowEntry("vanished", 1e6, 10),
	)
	fresh := diffReport(
		slowEntry("steady", 1.2e6, 10),      // +20% < 25% tolerance
		slowEntry("regressed", 1.5e6, 10),   // +50% ns/op
		slowEntry("noisy-fast", 5e3, 2),     // 5x but under the ns floor
		slowEntry("alloc-blowup", 1e6, 200), // allocs exploded, ns flat
		slowEntry("brand-new", 1e6, 10),     // no baseline: informational
	)
	regs := DiffBench(io.Discard, baseline, fresh, 0.25)
	joined := strings.Join(regs, "\n")
	if len(regs) != 3 {
		t.Fatalf("want 3 regressions (ns, allocs, missing), got %d:\n%s", len(regs), joined)
	}
	for _, needle := range []string{"solve/small/regressed", "solve/small/alloc-blowup", "solve/small/vanished"} {
		if !strings.Contains(joined, needle) {
			t.Errorf("regressions missing %s:\n%s", needle, joined)
		}
	}
	for _, clean := range []string{"steady", "noisy-fast", "brand-new"} {
		if strings.Contains(joined, clean) {
			t.Errorf("%s flagged as regression:\n%s", clean, joined)
		}
	}
}

// TestMergeBenchMin checks the best-of-two merge keeps the faster sample
// per key and preserves entries unique to either run.
func TestMergeBenchMin(t *testing.T) {
	a := diffReport(
		slowEntry("both", 2e6, 10),
		slowEntry("only-a", 1e6, 1),
	)
	b := diffReport(
		slowEntry("both", 1.5e6, 11),
		slowEntry("only-b", 3e6, 2),
	)
	m := MergeBenchMin(a, b)
	if len(m.Results) != 3 {
		t.Fatalf("merged %d entries, want 3: %+v", len(m.Results), m.Results)
	}
	byName := map[string]BenchResult{}
	for _, r := range m.Results {
		byName[r.Name] = r
	}
	if got := byName["both"]; got.NsPerOp != 1.5e6 || got.AllocsPerOp != 11 {
		t.Fatalf("merge kept %+v, want the faster whole sample", got)
	}
	if byName["only-a"].NsPerOp != 1e6 || byName["only-b"].NsPerOp != 3e6 {
		t.Fatal("merge dropped or mangled run-unique entries")
	}
	if a.Results[0].NsPerOp != 2e6 {
		t.Fatal("merge mutated its input report")
	}
}

// TestLoadBenchReportRoundTrip writes a report and loads it back; a stale
// schema must be rejected so bench-diff never compares across formats.
func TestLoadBenchReportRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bench.json")
	rep := diffReport(slowEntry("steady", 1e6, 10))
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.WriteJSON(f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	back, err := LoadBenchReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Results) != 1 || back.Results[0].Name != "steady" {
		t.Fatalf("round-trip mangled report: %+v", back)
	}

	stale := filepath.Join(dir, "stale.json")
	if err := os.WriteFile(stale, []byte(`{"schema":"mba-bench/v1","results":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadBenchReport(stale); err == nil {
		t.Fatal("v1 schema accepted by a v2 differ")
	}
}
