// Package experiments is the reproduction harness: one registered runner per
// reconstructed table and figure of the paper's evaluation (see DESIGN.md §7
// for the index and EXPERIMENTS.md for paper-vs-measured notes).
//
// Each experiment regenerates its workload from a seed, runs the relevant
// algorithm line-up, and prints the rows/series the corresponding table or
// figure would plot.  The Quick flag shrinks workloads so the whole suite
// stays test-friendly; Full scale is what cmd/mbabench runs by default.
package experiments

import (
	"fmt"
	"io"
	"sort"
)

// RunConfig controls one experiment invocation.
type RunConfig struct {
	// Seed drives every workload and randomised algorithm; the same seed
	// reproduces the run bit for bit.
	Seed uint64
	// Quick shrinks workloads (used by tests and smoke runs).
	Quick bool
	// Reps is the number of repetitions averaged per data point; 0 means
	// the experiment's default.
	Reps int
}

func (cfg RunConfig) reps(def int) int {
	if cfg.Reps > 0 {
		return cfg.Reps
	}
	return def
}

// pick returns quick when cfg.Quick is set, else full.
func (cfg RunConfig) pick(full, quick int) int {
	if cfg.Quick {
		return quick
	}
	return full
}

// Experiment is one reconstructed table or figure.
type Experiment struct {
	// ID is the DESIGN.md identifier (e.g. "R-Fig4").
	ID string
	// Title is the one-line description shown in listings.
	Title string
	// Expected states the paper-shape expectation the run should exhibit.
	Expected string
	// Run executes the experiment, writing its table to w.
	Run func(w io.Writer, cfg RunConfig) error
}

var registry = map[string]Experiment{}

// register adds an experiment to the registry at package init time.
func register(e Experiment) {
	if _, dup := registry[e.ID]; dup {
		panic("experiments: duplicate id " + e.ID)
	}
	registry[e.ID] = e
}

// All returns every experiment sorted by ID (tables first, then figures in
// numeric order thanks to the naming scheme).
func All() []Experiment {
	out := make([]Experiment, 0, len(registry))
	for _, e := range registry {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ByID finds one experiment.
func ByID(id string) (Experiment, error) {
	e, ok := registry[id]
	if !ok {
		ids := make([]string, 0, len(registry))
		for k := range registry {
			ids = append(ids, k)
		}
		sort.Strings(ids)
		return Experiment{}, fmt.Errorf("experiments: unknown id %q (have %v)", id, ids)
	}
	return e, nil
}

// RunAll executes every experiment in ID order.
func RunAll(w io.Writer, cfg RunConfig) error {
	for _, e := range All() {
		if err := RunOne(w, e, cfg); err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
	}
	return nil
}

// RunOne executes a single experiment with its standard header and footer.
func RunOne(w io.Writer, e Experiment, cfg RunConfig) error {
	fmt.Fprintf(w, "==== %s — %s (seed=%d quick=%v) ====\n", e.ID, e.Title, cfg.Seed, cfg.Quick)
	if err := e.Run(w, cfg); err != nil {
		return err
	}
	fmt.Fprintf(w, "expected shape: %s\n\n", e.Expected)
	return nil
}
