package faultinject

// LoadStorm: a seeded open-loop request generator for overload chaos.
// Open-loop means arrivals follow the configured rate regardless of how
// fast requests complete — exactly the regime that exposes overload
// bugs.  A closed-loop generator (issue, wait, issue) self-throttles the
// moment the server slows down, which is precisely when an admission
// controller must be tested hardest.

import (
	"context"
	"sort"
	"sync"
	"time"

	"repro/internal/stats"
)

// LoadStormOutcome classifies one request as the storm's do callback
// observed it.
type LoadStormOutcome int

const (
	// LoadAdmitted: the server accepted and served the request.
	LoadAdmitted LoadStormOutcome = iota
	// LoadShed: the server rejected it with backpressure (429).
	LoadShed
	// LoadError: transport failure or an unexpected status.
	LoadError
)

// LoadStormConfig shapes the storm.
type LoadStormConfig struct {
	// Rate is the arrival rate in requests/second.  Required > 0.
	Rate float64
	// Duration is how long arrivals are generated.
	Duration time.Duration
	// Seed drives the inter-arrival jitter; the arrival schedule is a
	// pure function of (Seed, Rate, Jitter), so a storm that finds a bug
	// can be re-run.
	Seed uint64
	// Jitter in [0,1) perturbs each inter-arrival gap uniformly within
	// ±Jitter of the nominal gap.  0 means a metronome.
	Jitter float64
	// MaxInFlight is a safety valve on concurrent requests (goroutines);
	// arrivals past it are counted as Skipped, not issued.  0 means
	// 4096.
	MaxInFlight int
}

// LoadStormReport aggregates the storm's outcomes.
type LoadStormReport struct {
	Issued   int // requests actually started
	Skipped  int // arrivals dropped by the MaxInFlight safety valve
	Admitted int
	Shed     int
	Errors   int
	// AdmittedLatencies holds one latency sample per admitted request,
	// in completion order.
	AdmittedLatencies []time.Duration
}

// Percentile returns the p-th (0..100) percentile of admitted-request
// latency, 0 when nothing was admitted.
func (r *LoadStormReport) Percentile(p float64) time.Duration {
	if len(r.AdmittedLatencies) == 0 {
		return 0
	}
	sorted := make([]time.Duration, len(r.AdmittedLatencies))
	copy(sorted, r.AdmittedLatencies)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(p / 100 * float64(len(sorted)-1))
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// RunLoadStorm generates arrivals at cfg.Rate for cfg.Duration and calls
// do(i) on its own goroutine for each one (i is the 0-based arrival
// index).  It blocks until every issued request has returned, then
// reports.  Cancelling ctx stops new arrivals; in-flight requests still
// drain.
func RunLoadStorm(ctx context.Context, cfg LoadStormConfig, do func(i int) LoadStormOutcome) *LoadStormReport {
	if cfg.Rate <= 0 || cfg.Duration <= 0 {
		return &LoadStormReport{}
	}
	maxInFlight := cfg.MaxInFlight
	if maxInFlight <= 0 {
		maxInFlight = 4096
	}
	rng := stats.NewRNG(cfg.Seed ^ 0x10adc0de)
	gap := float64(time.Second) / cfg.Rate

	rep := &LoadStormReport{}
	var mu sync.Mutex
	var wg sync.WaitGroup
	var inflight int

	start := time.Now()
	// Arrival times are precomputed offsets from start (pure function of
	// the seed), so completion timing never perturbs the schedule: that
	// is what makes the storm open-loop AND reproducible.
	next := 0.0
	for i := 0; ; i++ {
		j := 1.0
		if cfg.Jitter > 0 {
			j = 1 + cfg.Jitter*(2*rng.Float64()-1)
		}
		if i > 0 {
			next += gap * j
		}
		at := time.Duration(next)
		if at >= cfg.Duration {
			break
		}
		if ctx.Err() != nil {
			break
		}
		if d := start.Add(at).Sub(time.Now()); d > 0 {
			select {
			case <-time.After(d):
			case <-ctx.Done():
			}
			if ctx.Err() != nil {
				break
			}
		}
		mu.Lock()
		if inflight >= maxInFlight {
			rep.Skipped++
			mu.Unlock()
			continue
		}
		inflight++
		rep.Issued++
		mu.Unlock()
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			t0 := time.Now()
			out := do(i)
			lat := time.Since(t0)
			mu.Lock()
			inflight--
			switch out {
			case LoadAdmitted:
				rep.Admitted++
				rep.AdmittedLatencies = append(rep.AdmittedLatencies, lat)
			case LoadShed:
				rep.Shed++
			default:
				rep.Errors++
			}
			mu.Unlock()
		}(i)
	}
	wg.Wait()
	return rep
}
