package faultinject

import (
	"context"
	"sync/atomic"
	"testing"
	"time"
)

func TestLoadStormOpenLoopCounts(t *testing.T) {
	var calls atomic.Int64
	rep := RunLoadStorm(context.Background(), LoadStormConfig{
		Rate:     500,
		Duration: 200 * time.Millisecond,
		Seed:     7,
		Jitter:   0.5,
	}, func(i int) LoadStormOutcome {
		calls.Add(1)
		if i%3 == 0 {
			return LoadShed
		}
		if i%7 == 0 {
			return LoadError
		}
		return LoadAdmitted
	})
	if rep.Issued == 0 {
		t.Fatal("storm issued nothing")
	}
	if int(calls.Load()) != rep.Issued {
		t.Fatalf("callback ran %d times for %d issued", calls.Load(), rep.Issued)
	}
	if rep.Admitted+rep.Shed+rep.Errors != rep.Issued {
		t.Fatalf("outcomes %d+%d+%d don't add up to issued %d",
			rep.Admitted, rep.Shed, rep.Errors, rep.Issued)
	}
	if len(rep.AdmittedLatencies) != rep.Admitted {
		t.Fatalf("%d latency samples for %d admitted", len(rep.AdmittedLatencies), rep.Admitted)
	}
	if p := rep.Percentile(99); rep.Admitted > 0 && p <= 0 {
		t.Fatalf("p99 = %v with admitted requests", p)
	}
	// Open loop at 500/s for 200ms ≈ 100 arrivals; allow generous slack
	// for CI scheduling, but it must be in the right regime.
	if rep.Issued < 50 || rep.Issued > 150 {
		t.Fatalf("issued %d arrivals, want ≈100", rep.Issued)
	}
}

func TestLoadStormMaxInFlightSkips(t *testing.T) {
	// Callbacks park until the storm's arrival window has passed, so the
	// valve is saturated for every later arrival.
	block := make(chan struct{})
	time.AfterFunc(300*time.Millisecond, func() { close(block) })
	rep := RunLoadStorm(context.Background(), LoadStormConfig{
		Rate:        1000,
		Duration:    100 * time.Millisecond,
		Seed:        1,
		MaxInFlight: 2,
	}, func(int) LoadStormOutcome {
		<-block
		return LoadAdmitted
	})
	if rep.Issued > 2 {
		t.Fatalf("issued %d with MaxInFlight 2", rep.Issued)
	}
	if rep.Skipped == 0 {
		t.Fatal("safety valve never skipped despite saturated inflight")
	}
}

func TestLoadStormCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rep := RunLoadStorm(ctx, LoadStormConfig{Rate: 100, Duration: time.Second, Seed: 1},
		func(int) LoadStormOutcome { return LoadAdmitted })
	if rep.Issued > 1 {
		t.Fatalf("cancelled storm issued %d requests", rep.Issued)
	}
}
