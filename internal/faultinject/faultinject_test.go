package faultinject

import (
	"bytes"
	"errors"
	"testing"
)

func TestSchedulesAreDeterministic(t *testing.T) {
	cases := []struct {
		name  string
		sched Schedule
		want  []bool // ops 0..5
	}{
		{"Never", Never(), []bool{false, false, false, false, false, false}},
		{"EveryNth(3)", EveryNth(3), []bool{false, false, true, false, false, true}},
		{"After(4)", After(4), []bool{false, false, false, false, true, true}},
		{"Once(2)", Once(2), []bool{false, false, true, false, false, false}},
	}
	for _, c := range cases {
		for op, want := range c.want {
			if got := c.sched(op); got != want {
				t.Errorf("%s(%d) = %v, want %v", c.name, op, got, want)
			}
		}
	}
	// Seeded: pure in (seed, op) — two evaluations always agree — and a
	// probability-1 schedule always fires.
	s := Seeded(7, 0.5)
	for op := 0; op < 64; op++ {
		if s(op) != s(op) {
			t.Fatalf("Seeded unstable at op %d", op)
		}
		if !Seeded(7, 1.0)(op) {
			t.Fatalf("Seeded(p=1) did not fire at op %d", op)
		}
	}
}

func TestFlakyWriterFullAndPartial(t *testing.T) {
	var buf bytes.Buffer
	fw := NewFlakyWriter(&buf, EveryNth(2)) // fail ops 1, 3, ...
	if n, err := fw.Write([]byte("aaaa\n")); n != 5 || err != nil {
		t.Fatalf("clean write: (%d, %v)", n, err)
	}
	if n, err := fw.Write([]byte("bbbb\n")); n != 0 || !errors.Is(err, ErrInjected) {
		t.Fatalf("full failure: (%d, %v), want (0, ErrInjected)", n, err)
	}
	if fw.Injections() != 1 || fw.Ops() != 2 {
		t.Fatalf("counters: %d injections over %d ops", fw.Injections(), fw.Ops())
	}
	fw.Partial = true
	if _, err := fw.Write([]byte("cccc\n")); err != nil {
		t.Fatal(err)
	}
	n, err := fw.Write([]byte("dddd\n"))
	if n != 2 || !errors.Is(err, ErrInjected) {
		t.Fatalf("partial failure: (%d, %v), want 2 bytes torn", n, err)
	}
	if got := buf.String(); got != "aaaa\ncccc\ndd" {
		t.Fatalf("underlying buffer = %q", got)
	}
}
