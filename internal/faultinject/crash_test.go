package faultinject

import (
	"bytes"
	"errors"
	"testing"
)

func TestCrasherFiresAtScheduledBarrier(t *testing.T) {
	c := NewCrasher("snapshot.rename", 2)
	for i := 0; i < 2; i++ {
		if err := c.At("snapshot.rename"); err != nil {
			t.Fatalf("hit %d fired early: %v", i, err)
		}
		if err := c.At("other.point"); err != nil {
			t.Fatalf("foreign point tripped the schedule: %v", err)
		}
	}
	if err := c.At("snapshot.rename"); !errors.Is(err, ErrCrash) {
		t.Fatalf("scheduled hit: got %v, want ErrCrash", err)
	}
	if !c.Fired() {
		t.Fatal("Fired() false after the crash")
	}
	// Dead-process semantics: everything fails afterwards.
	if err := c.At("other.point"); !errors.Is(err, ErrCrash) {
		t.Fatalf("post-crash At succeeded: %v", err)
	}
	var buf bytes.Buffer
	if _, err := c.Wrap("any", &buf).Write([]byte("x")); !errors.Is(err, ErrCrash) {
		t.Fatalf("post-crash Write succeeded: %v", err)
	}
	if buf.Len() != 0 {
		t.Fatalf("a dead process wrote %d bytes", buf.Len())
	}
}

func TestTornCrasherTearsScheduledWrite(t *testing.T) {
	c := NewTornCrasher("segment.write", 1)
	var buf bytes.Buffer
	w := c.Wrap("segment.write", &buf)

	if _, err := w.Write([]byte("first-line\n")); err != nil {
		t.Fatalf("hit 0 fired early: %v", err)
	}
	payload := []byte("second-line-that-tears\n")
	n, err := w.Write(payload)
	if !errors.Is(err, ErrCrash) {
		t.Fatalf("scheduled write: got %v, want ErrCrash", err)
	}
	if n != len(payload)/2 {
		t.Fatalf("torn write persisted %d bytes, want half (%d)", n, len(payload)/2)
	}
	want := append([]byte("first-line\n"), payload[:len(payload)/2]...)
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("disk image %q, want %q", buf.Bytes(), want)
	}
	// A torn crasher never fires at barriers before its write hit, and
	// like every crasher it fails everything after.
	if err := c.At("segment.heal"); !errors.Is(err, ErrCrash) {
		t.Fatalf("post-crash barrier succeeded: %v", err)
	}
}

func TestTornCrasherIgnoresForeignStreams(t *testing.T) {
	c := NewTornCrasher("snapshot.body", 0)
	var buf bytes.Buffer
	w := c.Wrap("segment.write", &buf)
	for i := 0; i < 3; i++ {
		if _, err := w.Write([]byte("ok\n")); err != nil {
			t.Fatalf("foreign stream write %d failed: %v", i, err)
		}
	}
	if c.Fired() {
		t.Fatal("foreign stream consumed the schedule")
	}
	if _, err := c.Wrap("snapshot.body", &buf).Write([]byte("snapshot-bytes")); !errors.Is(err, ErrCrash) {
		t.Fatalf("scheduled stream: got %v, want ErrCrash", err)
	}
}

func TestCrasherBarrierAndWriteSchedulesAreSeparate(t *testing.T) {
	// A clean crasher on point P must not be advanced by writes to a
	// stream named P (writes count under the "w:" prefix).
	c := NewCrasher("p", 0)
	var buf bytes.Buffer
	w := c.Wrap("p", &buf)
	if _, err := w.Write([]byte("x")); err != nil {
		t.Fatalf("clean crasher tore a write: %v", err)
	}
	if err := c.At("p"); !errors.Is(err, ErrCrash) {
		t.Fatalf("barrier hit 0: got %v, want ErrCrash", err)
	}
}
