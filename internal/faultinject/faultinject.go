// Package faultinject provides the deterministic failure machinery the
// chaos tests drive the platform with: writers that fail or stall on a
// schedule, solvers that sleep or panic.  Everything is seeded and
// repeatable — a chaos run that finds a bug is a chaos run that can be
// re-run — and safe under -race.
//
// The package is production code only in the sense that it ships in the
// module; nothing outside tests imports it.
package faultinject

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/stats"
)

// ErrInjected is the error every injected write failure wraps, so tests
// can tell deliberate faults from real ones with errors.Is.
var ErrInjected = errors.New("faultinject: injected fault")

// Schedule decides, per operation index (0-based), whether to inject a
// fault.  Schedules are pure functions of the index, which is what makes a
// chaos run deterministic: the fault pattern depends only on operation
// order, never on timing.
type Schedule func(op int) bool

// Never injects nothing.
func Never() Schedule { return func(int) bool { return false } }

// EveryNth injects on operations n-1, 2n-1, … (every n-th operation).
// n <= 0 panics: a schedule that can't fire is Never, say so.
func EveryNth(n int) Schedule {
	if n <= 0 {
		panic("faultinject: EveryNth requires n > 0")
	}
	return func(op int) bool { return op%n == n-1 }
}

// After injects on every operation from index n onward.
func After(n int) Schedule { return func(op int) bool { return op >= n } }

// Once injects exactly on operation n.
func Once(n int) Schedule { return func(op int) bool { return op == n } }

// Seeded injects each operation independently with probability p, decided
// by a hash of (seed, op) — deterministic, order-stable, and free of
// shared RNG state so concurrent callers stay race-free.
func Seeded(seed uint64, p float64) Schedule {
	return func(op int) bool {
		x := seed ^ (uint64(op)+1)*0x9e3779b97f4a7c15
		// splitmix64 finaliser: full-avalanche, so adjacent ops decorrelate.
		x ^= x >> 30
		x *= 0xbf58476d1ce4e5b9
		x ^= x >> 27
		x *= 0x94d049bb133111eb
		x ^= x >> 31
		return float64(x>>11)/(1<<53) < p
	}
}

// FlakyWriter wraps w and fails writes per its schedule.  In full mode an
// injected write fails having written nothing (the caller can safely
// retry); in Partial mode it writes roughly half the buffer first —
// the torn-line case journal recovery and poisoning exist for.  Safe for
// concurrent use.
type FlakyWriter struct {
	// Partial selects torn writes over clean failures.
	Partial bool

	mu         sync.Mutex
	w          io.Writer
	sched      Schedule
	ops        int
	injections int
}

// NewFlakyWriter wraps w with the given fault schedule.
func NewFlakyWriter(w io.Writer, sched Schedule) *FlakyWriter {
	if sched == nil {
		sched = Never()
	}
	return &FlakyWriter{w: w, sched: sched}
}

// Write implements io.Writer.
func (f *FlakyWriter) Write(p []byte) (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	op := f.ops
	f.ops++
	if f.sched(op) {
		f.injections++
		if f.Partial && len(p) > 1 {
			n, err := f.w.Write(p[:len(p)/2])
			if err != nil {
				return n, fmt.Errorf("faultinject: op %d: %w (and underlying: %v)", op, ErrInjected, err)
			}
			return n, fmt.Errorf("faultinject: op %d torn after %d/%d bytes: %w", op, n, len(p), ErrInjected)
		}
		return 0, fmt.Errorf("faultinject: op %d: %w", op, ErrInjected)
	}
	return f.w.Write(p)
}

// Injections returns how many faults have fired so far.
func (f *FlakyWriter) Injections() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.injections
}

// Ops returns how many writes have been attempted so far.
func (f *FlakyWriter) Ops() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.ops
}

// CutWriter passes writes through until n total bytes have been
// delivered, then cuts the connection: the violating write delivers only
// the bytes that fit under the limit before failing, and every later
// write fails outright.  It is the torn-network-stream stand-in for
// replication tests — a response body that ends mid-record because the
// primary died.  Safe for concurrent use.
type CutWriter struct {
	mu        sync.Mutex
	w         io.Writer
	remaining int64
	cut       bool
}

// NewCutWriter cuts w after n bytes.
func NewCutWriter(w io.Writer, n int64) *CutWriter {
	return &CutWriter{w: w, remaining: n}
}

// Write implements io.Writer.
func (c *CutWriter) Write(p []byte) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.cut {
		return 0, fmt.Errorf("faultinject: write after cut: %w", ErrInjected)
	}
	if int64(len(p)) <= c.remaining {
		n, err := c.w.Write(p)
		c.remaining -= int64(n)
		return n, err
	}
	c.cut = true
	n, _ := c.w.Write(p[:c.remaining])
	c.remaining = 0
	return n, fmt.Errorf("faultinject: stream cut after %d/%d bytes: %w", n, len(p), ErrInjected)
}

// Cut reports whether the stream has been severed.
func (c *CutWriter) Cut() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.cut
}

// SlowWriter delays every write by Delay before delegating — the
// disk-under-pressure simulation for journal-latency tests.
type SlowWriter struct {
	W     io.Writer
	Delay time.Duration
}

// Write implements io.Writer.
func (s *SlowWriter) Write(p []byte) (int, error) {
	time.Sleep(s.Delay)
	return s.W.Write(p)
}

// SleepySolver delays Inner by Delay, observing ctx while it sleeps: a
// fired deadline aborts the sleep immediately with ctx.Err().  It is the
// "solver that is too slow for its budget" stand-in of the degradation
// tests, and keeps Inner's Name so degradation reports read naturally.
type SleepySolver struct {
	Inner core.Solver
	Delay time.Duration
}

// Name implements core.Solver.
func (s SleepySolver) Name() string { return s.Inner.Name() }

// Solve implements core.Solver.
func (s SleepySolver) Solve(p *core.Problem, r *stats.RNG) ([]int, error) {
	time.Sleep(s.Delay)
	return s.Inner.Solve(p, r)
}

// SolveCtx implements core.ContextSolver.
func (s SleepySolver) SolveCtx(ctx context.Context, p *core.Problem, r *stats.RNG) ([]int, error) {
	t := time.NewTimer(s.Delay)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-t.C:
	}
	return core.SolveWithContext(ctx, p, s.Inner, r)
}

// PanicSolver panics instead of solving on scheduled calls — the
// broken-algorithm stand-in that exercises the panic fences in
// core.RunCtx and the degrader chain.  Safe for concurrent use.
type PanicSolver struct {
	inner core.Solver
	sched Schedule

	mu    sync.Mutex
	calls int
}

// NewPanicSolver wraps inner with a panic schedule.
func NewPanicSolver(inner core.Solver, sched Schedule) *PanicSolver {
	if sched == nil {
		sched = Never()
	}
	return &PanicSolver{inner: inner, sched: sched}
}

// Name implements core.Solver.
func (s *PanicSolver) Name() string { return s.inner.Name() }

// Calls returns how many solves have been attempted so far.
func (s *PanicSolver) Calls() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.calls
}

func (s *PanicSolver) maybePanic() {
	s.mu.Lock()
	call := s.calls
	s.calls++
	fire := s.sched(call)
	s.mu.Unlock()
	if fire {
		panic(fmt.Sprintf("faultinject: scheduled panic on call %d", call))
	}
}

// Solve implements core.Solver.
func (s *PanicSolver) Solve(p *core.Problem, r *stats.RNG) ([]int, error) {
	s.maybePanic()
	return s.inner.Solve(p, r)
}

// SolveCtx implements core.ContextSolver.
func (s *PanicSolver) SolveCtx(ctx context.Context, p *core.Problem, r *stats.RNG) ([]int, error) {
	s.maybePanic()
	return core.SolveWithContext(ctx, p, s.inner, r)
}

// KillSwitch wraps an http.Handler with a hard-down toggle: once killed,
// every request aborts mid-response (panic(http.ErrAbortHandler), which
// net/http turns into a severed connection, not a tidy 5xx) — the
// process-crash stand-in for failover tests.  Revive restores service,
// which is exactly the resurrected-old-primary scenario split-brain
// storms need.  Safe for concurrent use.
type KillSwitch struct {
	inner http.Handler
	dead  atomic.Bool
}

// NewKillSwitch wraps h, initially alive.
func NewKillSwitch(h http.Handler) *KillSwitch {
	return &KillSwitch{inner: h}
}

// Kill makes every subsequent request die mid-flight.
func (k *KillSwitch) Kill() { k.dead.Store(true) }

// Revive restores the wrapped handler.
func (k *KillSwitch) Revive() { k.dead.Store(false) }

// Dead reports the current toggle.
func (k *KillSwitch) Dead() bool { return k.dead.Load() }

// ServeHTTP implements http.Handler.
func (k *KillSwitch) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if k.dead.Load() {
		panic(http.ErrAbortHandler)
	}
	k.inner.ServeHTTP(w, r)
}

// FlapHandler wraps an http.Handler and answers scheduled requests with
// 503 instead of serving them — the flapping-but-alive primary that an
// auto-takeover probe loop must NOT promote over.  Safe for concurrent
// use.
type FlapHandler struct {
	inner http.Handler
	sched Schedule

	mu  sync.Mutex
	ops int
}

// NewFlapHandler wraps h with the given 503 schedule.
func NewFlapHandler(h http.Handler, sched Schedule) *FlapHandler {
	if sched == nil {
		sched = Never()
	}
	return &FlapHandler{inner: h, sched: sched}
}

// ServeHTTP implements http.Handler.
func (f *FlapHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	f.mu.Lock()
	op := f.ops
	f.ops++
	fire := f.sched(op)
	f.mu.Unlock()
	if fire {
		http.Error(w, "faultinject: scheduled flap", http.StatusServiceUnavailable)
		return
	}
	f.inner.ServeHTTP(w, r)
}
