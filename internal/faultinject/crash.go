package faultinject

// Crash-point injection: a Crasher simulates a power cut at a named
// point inside the platform's checkpoint/segment writers (it implements
// platform.CrashHook structurally — At + Wrap — without importing the
// package).  The writers call At at barriers like "snapshot.rename" and
// route file writes through Wrap; when the scheduled hit arrives the
// Crasher "kills the machine": the in-flight operation aborts with
// ErrCrash, and — because a dead process performs no further I/O — every
// subsequent At and wrapped Write fails too.  What is left on disk is
// exactly the artifact a real crash at that point would leave: a torn
// temp file, an un-renamed complete snapshot, half a journal line, a
// sealed segment with no successor.

import (
	"errors"
	"fmt"
	"io"
	"sync"
)

// ErrCrash marks every failure caused by a simulated power cut.
var ErrCrash = errors.New("faultinject: injected crash")

// Crasher fires once, at the n-th hit of a named crash point, then fails
// everything after.  Safe for concurrent use.
type Crasher struct {
	mu    sync.Mutex
	point string
	hit   int
	torn  bool
	seen  map[string]int
	fired bool
}

// NewCrasher crashes cleanly (between writes) at the hit-th occurrence
// (0-based) of the named barrier point.
func NewCrasher(point string, hit int) *Crasher {
	return &Crasher{point: point, hit: hit, seen: map[string]int{}}
}

// NewTornCrasher crashes mid-write: at the hit-th Write of the named
// wrapped stream it persists only the first half of the buffer before
// dying — the torn-artifact case CRC checks and tail truncation exist
// for.
func NewTornCrasher(point string, hit int) *Crasher {
	return &Crasher{point: point, hit: hit, torn: true, seen: map[string]int{}}
}

// Fired reports whether the crash has happened.
func (c *Crasher) Fired() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.fired
}

// At implements the barrier half of platform.CrashHook.
func (c *Crasher) At(point string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.fired {
		return fmt.Errorf("faultinject: at %s after crash: %w", point, ErrCrash)
	}
	n := c.seen[point]
	c.seen[point] = n + 1
	if !c.torn && point == c.point && n == c.hit {
		c.fired = true
		return fmt.Errorf("faultinject: power cut at %s (hit %d): %w", point, n, ErrCrash)
	}
	return nil
}

// Wrap implements the stream half of platform.CrashHook.
func (c *Crasher) Wrap(point string, w io.Writer) io.Writer {
	return &crashWriter{c: c, point: point, w: w}
}

type crashWriter struct {
	c     *Crasher
	point string
	w     io.Writer
}

func (cw *crashWriter) Write(p []byte) (int, error) {
	c := cw.c
	c.mu.Lock()
	if c.fired {
		c.mu.Unlock()
		return 0, fmt.Errorf("faultinject: write to %s after crash: %w", cw.point, ErrCrash)
	}
	// Write hits are counted per stream name under "w:" so barrier hits of
	// the same name (if any) don't share the schedule.
	key := "w:" + cw.point
	n := c.seen[key]
	c.seen[key] = n + 1
	fire := c.torn && cw.point == c.point && n == c.hit
	if fire {
		c.fired = true
	}
	c.mu.Unlock()
	if !fire {
		return cw.w.Write(p)
	}
	k := 0
	if len(p) > 1 {
		k, _ = cw.w.Write(p[:len(p)/2])
	}
	return k, fmt.Errorf("faultinject: power cut tore write to %s after %d/%d bytes: %w",
		cw.point, k, len(p), ErrCrash)
}
