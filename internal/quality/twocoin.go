package quality

import (
	"math"

	"repro/internal/stats"
)

// EMTwoCoin aggregates with the full binary Dawid–Skene model: each worker
// has *two* parameters — sensitivity P(answer 1 | truth 1) and specificity
// P(answer 0 | truth 0) — instead of the single symmetric accuracy EM uses.
// Workers whose errors are asymmetric (e.g. trigger-happy labellers that
// over-report positives) are modelled correctly, which the one-coin model
// cannot do.
//
// It returns the inferred labels and per-worker (sensitivity, specificity)
// estimates; workers with no answers report (0.5, 0.5).  iters bounds the
// EM rounds (0 = default 30); prior is the class prior P(truth = 1),
// re-estimated each round from the posteriors.
func EMTwoCoin(as *AnswerSet, iters int, r *stats.RNG) ([]int, [][2]float64) {
	if iters <= 0 {
		iters = 30
	}
	// Posterior P(truth_t = 1), initialised from vote share.
	post := make([]float64, as.NumTasks)
	for t, answers := range as.Answers {
		if len(answers) == 0 {
			post[t] = 0.5
			continue
		}
		ones := 0
		for _, a := range answers {
			ones += a.Label
		}
		post[t] = float64(ones) / float64(len(answers))
	}
	sens := make([]float64, as.NumWorkers) // P(label 1 | truth 1)
	spec := make([]float64, as.NumWorkers) // P(label 0 | truth 0)
	prior := 0.5

	for iter := 0; iter < iters; iter++ {
		// M-step with add-one smoothing.
		onesGivenPos := make([]float64, as.NumWorkers)
		posMass := make([]float64, as.NumWorkers)
		zerosGivenNeg := make([]float64, as.NumWorkers)
		negMass := make([]float64, as.NumWorkers)
		var priorSum float64
		var priorN int
		for t, answers := range as.Answers {
			p := post[t]
			if len(answers) > 0 {
				priorSum += p
				priorN++
			}
			for _, a := range answers {
				posMass[a.Worker] += p
				negMass[a.Worker] += 1 - p
				if a.Label == 1 {
					onesGivenPos[a.Worker] += p
				} else {
					zerosGivenNeg[a.Worker] += 1 - p
				}
			}
		}
		for w := 0; w < as.NumWorkers; w++ {
			if posMass[w]+negMass[w] == 0 {
				sens[w], spec[w] = 0.5, 0.5
				continue
			}
			sens[w] = clamp01eps((onesGivenPos[w] + 1) / (posMass[w] + 2))
			spec[w] = clamp01eps((zerosGivenNeg[w] + 1) / (negMass[w] + 2))
		}
		if priorN > 0 {
			prior = clamp01eps(priorSum / float64(priorN))
		}

		// E-step: log-posterior with the asymmetric likelihoods.
		for t, answers := range as.Answers {
			if len(answers) == 0 {
				post[t] = prior
				continue
			}
			logOdds := math.Log(prior / (1 - prior))
			for _, a := range answers {
				if a.Label == 1 {
					logOdds += math.Log(sens[a.Worker] / (1 - spec[a.Worker]))
				} else {
					logOdds += math.Log((1 - sens[a.Worker]) / spec[a.Worker])
				}
			}
			post[t] = 1 / (1 + math.Exp(-logOdds))
		}
	}

	out := make([]int, as.NumTasks)
	params := make([][2]float64, as.NumWorkers)
	for w := range params {
		params[w] = [2]float64{sens[w], spec[w]}
	}
	for t, p := range post {
		switch {
		case p > 0.5:
			out[t] = 1
		case p < 0.5:
			out[t] = 0
		default:
			if r.Bool(0.5) {
				out[t] = 1
			}
		}
	}
	return out, params
}

// clamp01eps keeps probabilities strictly inside (0, 1) so log-odds stay
// finite.
func clamp01eps(p float64) float64 {
	const eps = 0.01
	if p < eps {
		return eps
	}
	if p > 1-eps {
		return 1 - eps
	}
	return p
}
