package quality

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/stats"
)

// panelVotes builds votes assigning each of n workers (with the given
// accuracy) to every one of m tasks.
func panelVotes(n, m int, acc float64) []Vote {
	var votes []Vote
	for w := 0; w < n; w++ {
		for t := 0; t < m; t++ {
			votes = append(votes, Vote{Worker: w, Task: t, Acc: acc})
		}
	}
	return votes
}

func TestSimulateShape(t *testing.T) {
	r := stats.NewRNG(1)
	as, err := Simulate(3, 5, panelVotes(3, 5, 0.8), r)
	if err != nil {
		t.Fatal(err)
	}
	if as.NumTasks != 5 || as.NumWorkers != 3 || len(as.Truth) != 5 {
		t.Fatal("shape wrong")
	}
	for tt, answers := range as.Answers {
		if len(answers) != 3 {
			t.Fatalf("task %d has %d answers", tt, len(answers))
		}
		for _, a := range answers {
			if a.Label != 0 && a.Label != 1 {
				t.Fatalf("label %d", a.Label)
			}
		}
	}
}

func TestSimulateValidation(t *testing.T) {
	r := stats.NewRNG(2)
	if _, err := Simulate(-1, 2, nil, r); err == nil {
		t.Fatal("negative workers accepted")
	}
	if _, err := Simulate(2, 2, []Vote{{Worker: 5, Task: 0, Acc: 0.7}}, r); err == nil {
		t.Fatal("bad worker accepted")
	}
	if _, err := Simulate(2, 2, []Vote{{Worker: 0, Task: 9, Acc: 0.7}}, r); err == nil {
		t.Fatal("bad task accepted")
	}
	if _, err := Simulate(2, 2, []Vote{{Worker: 0, Task: 0, Acc: 1.5}}, r); err == nil {
		t.Fatal("bad accuracy accepted")
	}
}

func TestSimulateAnswerAccuracyMatchesModel(t *testing.T) {
	r := stats.NewRNG(3)
	const acc = 0.8
	as, err := Simulate(1, 20000, panelVotes(1, 20000, acc), r)
	if err != nil {
		t.Fatal(err)
	}
	correct := 0
	for tt, answers := range as.Answers {
		if answers[0].Label == as.Truth[tt] {
			correct++
		}
	}
	got := float64(correct) / 20000
	if math.Abs(got-acc) > 0.01 {
		t.Fatalf("empirical accuracy %v, want ~%v", got, acc)
	}
}

func TestMajorityVoteUnanimous(t *testing.T) {
	as := &AnswerSet{
		NumTasks: 2, NumWorkers: 3,
		Truth: []int{1, 0},
		Answers: [][]Answer{
			{{0, 1, 0.8}, {1, 1, 0.8}, {2, 1, 0.8}},
			{{0, 0, 0.8}, {1, 0, 0.8}, {2, 1, 0.8}},
		},
	}
	pred := MajorityVote(as, stats.NewRNG(1))
	if pred[0] != 1 || pred[1] != 0 {
		t.Fatalf("pred = %v", pred)
	}
	if Accuracy(as, pred, false) != 1 {
		t.Fatal("accuracy should be 1")
	}
}

func TestWeightedVoteTrustsExperts(t *testing.T) {
	// Two weak wrong votes vs one strong right vote: weighted vote should
	// side with the expert while the majority goes wrong.
	as := &AnswerSet{
		NumTasks: 1, NumWorkers: 3,
		Truth: []int{1},
		Answers: [][]Answer{
			{{0, 0, 0.55}, {1, 0, 0.55}, {2, 1, 0.99}},
		},
	}
	r := stats.NewRNG(1)
	if pred := MajorityVote(as, r); pred[0] != 0 {
		t.Fatalf("majority should be fooled, got %v", pred)
	}
	if pred := WeightedVote(as, r); pred[0] != 1 {
		t.Fatalf("weighted vote should trust the expert, got %v", pred)
	}
}

func TestAggregatorsOrderedByInformation(t *testing.T) {
	// On a heterogeneous crowd, oracle-weighted ≥ majority on average, and
	// EM lands between (or above majority at least).
	r := stats.NewRNG(4)
	const tasks = 2000
	var votes []Vote
	accs := []float64{0.55, 0.6, 0.65, 0.9, 0.95}
	for w, a := range accs {
		for tt := 0; tt < tasks; tt++ {
			votes = append(votes, Vote{Worker: w, Task: tt, Acc: a})
		}
	}
	as, err := Simulate(len(accs), tasks, votes, r)
	if err != nil {
		t.Fatal(err)
	}
	mv := Accuracy(as, MajorityVote(as, r), false)
	wv := Accuracy(as, WeightedVote(as, r), false)
	emPred, _ := EM(as, 0, r)
	em := Accuracy(as, emPred, false)
	if wv < mv-0.005 {
		t.Fatalf("weighted %v below majority %v", wv, mv)
	}
	if em < mv-0.005 {
		t.Fatalf("EM %v clearly below majority %v", em, mv)
	}
	if wv < 0.9 {
		t.Fatalf("oracle weighting only reached %v", wv)
	}
}

func TestEMRecoversWorkerAccuracy(t *testing.T) {
	r := stats.NewRNG(5)
	const tasks = 3000
	accs := []float64{0.6, 0.75, 0.95}
	var votes []Vote
	for w, a := range accs {
		for tt := 0; tt < tasks; tt++ {
			votes = append(votes, Vote{Worker: w, Task: tt, Acc: a})
		}
	}
	as, err := Simulate(len(accs), tasks, votes, r)
	if err != nil {
		t.Fatal(err)
	}
	_, est := EM(as, 0, r)
	for w, a := range accs {
		if math.Abs(est[w]-a) > 0.08 {
			t.Errorf("worker %d: estimated %v, true %v", w, est[w], a)
		}
	}
	// Ordering must be recovered exactly.
	if !(est[0] < est[1] && est[1] < est[2]) {
		t.Fatalf("accuracy ordering lost: %v", est)
	}
}

func TestEMIdleWorkerDefaults(t *testing.T) {
	as := &AnswerSet{
		NumTasks: 1, NumWorkers: 2,
		Truth:   []int{1},
		Answers: [][]Answer{{{0, 1, 0.9}}},
	}
	_, est := EM(as, 5, stats.NewRNG(1))
	if est[1] != 0.5 {
		t.Fatalf("idle worker accuracy = %v, want 0.5", est[1])
	}
}

func TestEmptyPanelsAreCoinFlips(t *testing.T) {
	as := &AnswerSet{
		NumTasks: 400, NumWorkers: 1,
		Truth:   make([]int, 400),
		Answers: make([][]Answer, 400),
	}
	r := stats.NewRNG(6)
	pred := MajorityVote(as, r)
	acc := Accuracy(as, pred, false)
	if acc < 0.4 || acc > 0.6 {
		t.Fatalf("empty-panel accuracy %v not ~0.5", acc)
	}
	// onlyAnswered mode excludes them entirely.
	if got := Accuracy(as, pred, true); got != 0 {
		t.Fatalf("onlyAnswered accuracy over empty set = %v, want 0", got)
	}
}

func TestAccuracyPanicsOnLengthMismatch(t *testing.T) {
	as := &AnswerSet{NumTasks: 2, Truth: []int{0, 1}, Answers: make([][]Answer, 2)}
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on mismatch")
		}
	}()
	Accuracy(as, []int{0}, false)
}

// Property: aggregated labels are always binary and accuracy is in [0,1].
func TestQuickAggregatorsWellFormed(t *testing.T) {
	f := func(seed uint64, nw, nt uint8) bool {
		numW := int(nw%6) + 1
		numT := int(nt%20) + 1
		r := stats.NewRNG(seed)
		var votes []Vote
		for w := 0; w < numW; w++ {
			for tt := 0; tt < numT; tt++ {
				if r.Bool(0.6) {
					votes = append(votes, Vote{Worker: w, Task: tt, Acc: 0.5 + 0.49*r.Float64()})
				}
			}
		}
		as, err := Simulate(numW, numT, votes, r)
		if err != nil {
			return false
		}
		emPred, est := EM(as, 0, r)
		for _, preds := range [][]int{MajorityVote(as, r), WeightedVote(as, r), emPred} {
			if len(preds) != numT {
				return false
			}
			for _, v := range preds {
				if v != 0 && v != 1 {
					return false
				}
			}
			a := Accuracy(as, preds, false)
			if a < 0 || a > 1 {
				return false
			}
		}
		for _, a := range est {
			if a < 0.5 || a > 0.99 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
