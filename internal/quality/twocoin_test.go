package quality

import (
	"math"
	"testing"

	"repro/internal/stats"
)

// simulateAsymmetric builds an AnswerSet where each worker has separate
// sensitivity/specificity, which Simulate's single-accuracy model cannot
// express.
func simulateAsymmetric(numTasks int, sens, spec []float64, r *stats.RNG) *AnswerSet {
	as := &AnswerSet{
		NumTasks:   numTasks,
		NumWorkers: len(sens),
		Truth:      make([]int, numTasks),
		Answers:    make([][]Answer, numTasks),
	}
	for t := 0; t < numTasks; t++ {
		if r.Bool(0.5) {
			as.Truth[t] = 1
		}
		for w := range sens {
			var label int
			if as.Truth[t] == 1 {
				if r.Bool(sens[w]) {
					label = 1
				}
			} else {
				if !r.Bool(spec[w]) {
					label = 1
				}
			}
			// Acc recorded as the balanced accuracy for the oracle baseline.
			as.Answers[t] = append(as.Answers[t], Answer{
				Worker: w, Label: label, Acc: (sens[w] + spec[w]) / 2,
			})
		}
	}
	return as
}

func TestEMTwoCoinRecoversAsymmetry(t *testing.T) {
	r := stats.NewRNG(61)
	// Worker 0: trigger-happy (high sensitivity, poor specificity);
	// worker 1: conservative; worker 2: balanced expert.
	sens := []float64{0.95, 0.60, 0.90}
	spec := []float64{0.55, 0.95, 0.90}
	as := simulateAsymmetric(4000, sens, spec, r)
	_, params := EMTwoCoin(as, 0, r)
	for w := range sens {
		if math.Abs(params[w][0]-sens[w]) > 0.08 {
			t.Errorf("worker %d sensitivity: est %v true %v", w, params[w][0], sens[w])
		}
		if math.Abs(params[w][1]-spec[w]) > 0.08 {
			t.Errorf("worker %d specificity: est %v true %v", w, params[w][1], spec[w])
		}
	}
}

func TestEMTwoCoinBeatsOneCoinOnAsymmetricCrowd(t *testing.T) {
	r := stats.NewRNG(62)
	// A crowd of trigger-happy labellers: one-coin EM misestimates them,
	// two-coin exploits the asymmetry.
	sens := []float64{0.95, 0.9, 0.92, 0.88, 0.93}
	spec := []float64{0.6, 0.55, 0.65, 0.6, 0.58}
	as := simulateAsymmetric(3000, sens, spec, r)
	oneCoinPred, _ := EM(as, 0, r)
	twoCoinPred, _ := EMTwoCoin(as, 0, r)
	one := Accuracy(as, oneCoinPred, false)
	two := Accuracy(as, twoCoinPred, false)
	if two <= one {
		t.Fatalf("two-coin %v did not beat one-coin %v on asymmetric crowd", two, one)
	}
}

func TestEMTwoCoinMatchesOneCoinOnSymmetricCrowd(t *testing.T) {
	r := stats.NewRNG(63)
	const tasks = 3000
	accs := []float64{0.7, 0.8, 0.9}
	var votes []Vote
	for w, a := range accs {
		for tt := 0; tt < tasks; tt++ {
			votes = append(votes, Vote{Worker: w, Task: tt, Acc: a})
		}
	}
	as, err := Simulate(len(accs), tasks, votes, r)
	if err != nil {
		t.Fatal(err)
	}
	onePred, _ := EM(as, 0, r)
	twoPred, _ := EMTwoCoin(as, 0, r)
	one := Accuracy(as, onePred, false)
	two := Accuracy(as, twoPred, false)
	if math.Abs(one-two) > 0.02 {
		t.Fatalf("symmetric crowd: one-coin %v vs two-coin %v diverged", one, two)
	}
}

func TestEMTwoCoinIdleWorker(t *testing.T) {
	as := &AnswerSet{
		NumTasks: 1, NumWorkers: 2,
		Truth:   []int{1},
		Answers: [][]Answer{{{0, 1, 0.9}}},
	}
	_, params := EMTwoCoin(as, 5, stats.NewRNG(1))
	if params[1][0] != 0.5 || params[1][1] != 0.5 {
		t.Fatalf("idle worker params = %v", params[1])
	}
}

func TestEMTwoCoinEmptyTasks(t *testing.T) {
	as := &AnswerSet{
		NumTasks: 3, NumWorkers: 1,
		Truth:   []int{0, 1, 0},
		Answers: make([][]Answer, 3),
	}
	pred, _ := EMTwoCoin(as, 5, stats.NewRNG(2))
	if len(pred) != 3 {
		t.Fatal("prediction length wrong")
	}
	for _, v := range pred {
		if v != 0 && v != 1 {
			t.Fatalf("non-binary label %d", v)
		}
	}
}
