package quality

import (
	"fmt"
	"math"

	"repro/internal/stats"
)

// Multi-class (k-ary) labels: real microtask campaigns rarely ask yes/no
// questions — image categorisation, sentiment scales and entity types are
// k-ary.  This file provides the k-ary counterparts of the binary pipeline:
// simulation under the uniform-error model, plurality voting, and the
// accuracy-weighted (oracle) plurality.
//
// The uniform-error model mirrors the binary benefit model: a worker with
// effective accuracy a answers the true label with probability a and
// otherwise picks one of the remaining k−1 labels uniformly.  That keeps
// the market layer's single per-category accuracy meaningful for any k.

// MultiAnswerSet is the k-ary analogue of AnswerSet.
type MultiAnswerSet struct {
	NumTasks   int
	NumWorkers int
	// NumLabels is k, the size of the label alphabet (≥ 2).
	NumLabels int
	// Truth[t] in [0, NumLabels) is the hidden label of task t.
	Truth []int
	// Answers[t] lists the collected answers for task t.
	Answers [][]Answer
}

// SimulateMulti draws hidden k-ary truths uniformly and simulates every
// vote under the uniform-error model.
func SimulateMulti(numWorkers, numTasks, numLabels int, votes []Vote, r *stats.RNG) (*MultiAnswerSet, error) {
	if numWorkers < 0 || numTasks < 0 {
		return nil, fmt.Errorf("quality: negative sizes")
	}
	if numLabels < 2 {
		return nil, fmt.Errorf("quality: need at least 2 labels, got %d", numLabels)
	}
	as := &MultiAnswerSet{
		NumTasks:   numTasks,
		NumWorkers: numWorkers,
		NumLabels:  numLabels,
		Truth:      make([]int, numTasks),
		Answers:    make([][]Answer, numTasks),
	}
	for t := range as.Truth {
		as.Truth[t] = r.Intn(numLabels)
	}
	for _, v := range votes {
		if v.Worker < 0 || v.Worker >= numWorkers {
			return nil, fmt.Errorf("quality: vote worker %d out of range", v.Worker)
		}
		if v.Task < 0 || v.Task >= numTasks {
			return nil, fmt.Errorf("quality: vote task %d out of range", v.Task)
		}
		if v.Acc < 0 || v.Acc > 1 {
			return nil, fmt.Errorf("quality: vote accuracy %v out of range", v.Acc)
		}
		label := as.Truth[v.Task]
		if !r.Bool(v.Acc) {
			// Uniform error over the k−1 wrong labels.
			wrong := r.Intn(numLabels - 1)
			if wrong >= label {
				wrong++
			}
			label = wrong
		}
		as.Answers[v.Task] = append(as.Answers[v.Task], Answer{Worker: v.Worker, Label: label, Acc: v.Acc})
	}
	return as, nil
}

// PluralityVote aggregates by most-voted label; ties (and empty panels)
// are broken uniformly at random among the tied labels via r.
func PluralityVote(as *MultiAnswerSet, r *stats.RNG) []int {
	out := make([]int, as.NumTasks)
	counts := make([]int, as.NumLabels)
	for t, answers := range as.Answers {
		for i := range counts {
			counts[i] = 0
		}
		for _, a := range answers {
			counts[a.Label]++
		}
		out[t] = argmaxRandomTie(counts, r)
	}
	return out
}

// WeightedPlurality aggregates with the Bayes-optimal per-answer weights of
// the uniform-error model: an answer with accuracy a contributes
// log(a·(k−1)/(1−a)) to its label's score.  As in the binary case this is
// the oracle reference (true accuracies assumed known).
func WeightedPlurality(as *MultiAnswerSet, r *stats.RNG) []int {
	out := make([]int, as.NumTasks)
	scores := make([]float64, as.NumLabels)
	k := float64(as.NumLabels)
	for t, answers := range as.Answers {
		for i := range scores {
			scores[i] = 0
		}
		for _, a := range answers {
			acc := math.Min(0.99, math.Max(1/k+0.01, a.Acc))
			w := math.Log(acc * (k - 1) / (1 - acc))
			scores[a.Label] += w
		}
		out[t] = argmaxFloatRandomTie(scores, r)
	}
	return out
}

// MultiAccuracy is the k-ary analogue of Accuracy.
func MultiAccuracy(as *MultiAnswerSet, pred []int, onlyAnswered bool) float64 {
	if len(pred) != as.NumTasks {
		panic("quality: prediction length mismatch")
	}
	correct, total := 0, 0
	for t := range pred {
		if onlyAnswered && len(as.Answers[t]) == 0 {
			continue
		}
		total++
		if pred[t] == as.Truth[t] {
			correct++
		}
	}
	if total == 0 {
		return 0
	}
	return float64(correct) / float64(total)
}

// PluralityCorrectProb returns the probability that plurality voting over n
// independent answers with common accuracy a (uniform-error, k labels)
// recovers the truth, estimated by Monte Carlo with the given number of
// trials.  It is the k-ary counterpart of benefit.MajorityCorrectProb
// (whose exact DP does not generalise cheaply past k = 2) and exists for
// calibration studies of replication levels.
func PluralityCorrectProb(n, k int, a float64, trials int, r *stats.RNG) float64 {
	if n <= 0 || k < 2 || trials <= 0 {
		panic("quality: bad PluralityCorrectProb arguments")
	}
	counts := make([]int, k)
	hits := 0
	for trial := 0; trial < trials; trial++ {
		for i := range counts {
			counts[i] = 0
		}
		for v := 0; v < n; v++ {
			if r.Bool(a) {
				counts[0]++ // truth fixed at label 0 wlog
			} else {
				counts[1+r.Intn(k-1)]++
			}
		}
		if argmaxRandomTie(counts, r) == 0 {
			hits++
		}
	}
	return float64(hits) / float64(trials)
}

// argmaxRandomTie returns the index of the maximum, breaking ties uniformly.
func argmaxRandomTie(counts []int, r *stats.RNG) int {
	best, nTies := 0, 1
	for i := 1; i < len(counts); i++ {
		switch {
		case counts[i] > counts[best]:
			best, nTies = i, 1
		case counts[i] == counts[best]:
			nTies++
			// Reservoir-style uniform choice among ties.
			if r.Intn(nTies) == 0 {
				best = i
			}
		}
	}
	return best
}

// argmaxFloatRandomTie is argmaxRandomTie over float scores.
func argmaxFloatRandomTie(scores []float64, r *stats.RNG) int {
	best, nTies := 0, 1
	for i := 1; i < len(scores); i++ {
		switch {
		case scores[i] > scores[best]:
			best, nTies = i, 1
		case scores[i] == scores[best]:
			nTies++
			if r.Intn(nTies) == 0 {
				best = i
			}
		}
	}
	return best
}
