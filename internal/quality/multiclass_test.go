package quality

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/stats"
)

func multiPanelVotes(n, m int, acc float64) []Vote {
	var votes []Vote
	for w := 0; w < n; w++ {
		for t := 0; t < m; t++ {
			votes = append(votes, Vote{Worker: w, Task: t, Acc: acc})
		}
	}
	return votes
}

func TestSimulateMultiShape(t *testing.T) {
	r := stats.NewRNG(1)
	as, err := SimulateMulti(3, 10, 5, multiPanelVotes(3, 10, 0.8), r)
	if err != nil {
		t.Fatal(err)
	}
	if as.NumLabels != 5 {
		t.Fatal("labels wrong")
	}
	for tt, truth := range as.Truth {
		if truth < 0 || truth >= 5 {
			t.Fatalf("truth %d out of range", truth)
		}
		for _, a := range as.Answers[tt] {
			if a.Label < 0 || a.Label >= 5 {
				t.Fatalf("label %d out of range", a.Label)
			}
		}
	}
}

func TestSimulateMultiValidation(t *testing.T) {
	r := stats.NewRNG(2)
	if _, err := SimulateMulti(2, 2, 1, nil, r); err == nil {
		t.Fatal("single-label alphabet accepted")
	}
	if _, err := SimulateMulti(2, 2, 3, []Vote{{Worker: 9, Task: 0, Acc: 0.5}}, r); err == nil {
		t.Fatal("bad worker accepted")
	}
}

func TestSimulateMultiErrorModel(t *testing.T) {
	// With accuracy a and k labels, the empirical correct rate must be ~a
	// and errors must spread over all wrong labels.
	r := stats.NewRNG(3)
	const k, tasks, acc = 4, 30000, 0.7
	as, err := SimulateMulti(1, tasks, k, multiPanelVotes(1, tasks, acc), r)
	if err != nil {
		t.Fatal(err)
	}
	correct := 0
	wrongSpread := map[int]int{}
	for tt, answers := range as.Answers {
		if answers[0].Label == as.Truth[tt] {
			correct++
		} else {
			// Record the wrong label's offset from the truth (mod k).
			wrongSpread[(answers[0].Label-as.Truth[tt]+k)%k]++
		}
	}
	if got := float64(correct) / tasks; math.Abs(got-acc) > 0.01 {
		t.Fatalf("correct rate %v, want ~%v", got, acc)
	}
	if len(wrongSpread) != k-1 {
		t.Fatalf("errors not spread over all wrong labels: %v", wrongSpread)
	}
}

func TestPluralityVoteUnanimous(t *testing.T) {
	as := &MultiAnswerSet{
		NumTasks: 1, NumWorkers: 3, NumLabels: 4,
		Truth:   []int{2},
		Answers: [][]Answer{{{0, 2, 0.8}, {1, 2, 0.8}, {2, 1, 0.8}}},
	}
	pred := PluralityVote(as, stats.NewRNG(1))
	if pred[0] != 2 {
		t.Fatalf("pred = %v", pred)
	}
	if MultiAccuracy(as, pred, false) != 1 {
		t.Fatal("accuracy wrong")
	}
}

func TestWeightedPluralityTrustsExperts(t *testing.T) {
	// Two weak voters on label 0 vs one strong voter on label 1.
	as := &MultiAnswerSet{
		NumTasks: 1, NumWorkers: 3, NumLabels: 3,
		Truth:   []int{1},
		Answers: [][]Answer{{{0, 0, 0.4}, {1, 0, 0.4}, {2, 1, 0.99}}},
	}
	r := stats.NewRNG(1)
	if pred := WeightedPlurality(as, r); pred[0] != 1 {
		t.Fatalf("weighted plurality ignored the expert: %v", pred)
	}
}

func TestMultiAggregatorsAccuracyOrdering(t *testing.T) {
	r := stats.NewRNG(4)
	const tasks, k = 3000, 4
	accs := []float64{0.4, 0.45, 0.5, 0.9, 0.95}
	var votes []Vote
	for w, a := range accs {
		for tt := 0; tt < tasks; tt++ {
			votes = append(votes, Vote{Worker: w, Task: tt, Acc: a})
		}
	}
	as, err := SimulateMulti(len(accs), tasks, k, votes, r)
	if err != nil {
		t.Fatal(err)
	}
	pv := MultiAccuracy(as, PluralityVote(as, r), false)
	wv := MultiAccuracy(as, WeightedPlurality(as, r), false)
	if wv < pv-0.005 {
		t.Fatalf("weighted %v below plurality %v", wv, pv)
	}
	// Note 0.4 accuracy is still far above the 1/k=0.25 chance floor, so
	// even plurality should beat a lone expert-free crowd baseline of ~0.5.
	if pv < 0.6 {
		t.Fatalf("plurality implausibly low: %v", pv)
	}
}

func TestPluralityCorrectProbCalibration(t *testing.T) {
	r := stats.NewRNG(5)
	// More voters help; more labels make the problem easier at fixed
	// accuracy (wrong votes split across more alternatives).
	p3 := PluralityCorrectProb(3, 3, 0.6, 20000, r)
	p9 := PluralityCorrectProb(9, 3, 0.6, 20000, r)
	if p9 <= p3 {
		t.Fatalf("more voters did not help: %v vs %v", p9, p3)
	}
	k2 := PluralityCorrectProb(5, 2, 0.6, 20000, r)
	k6 := PluralityCorrectProb(5, 6, 0.6, 20000, r)
	if k6 <= k2 {
		t.Fatalf("error splitting did not help: k=6 %v vs k=2 %v", k6, k2)
	}
}

func TestPluralityCorrectProbPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { PluralityCorrectProb(0, 3, 0.5, 10, stats.NewRNG(1)) },
		func() { PluralityCorrectProb(3, 1, 0.5, 10, stats.NewRNG(1)) },
		func() { PluralityCorrectProb(3, 3, 0.5, 0, stats.NewRNG(1)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("no panic")
				}
			}()
			fn()
		}()
	}
}

// Property: with k = 2 the k-ary pipeline agrees with the binary one in
// distribution — plurality accuracy over a common-accuracy panel matches
// the exact binary majority probability.
func TestMultiBinaryConsistency(t *testing.T) {
	r := stats.NewRNG(6)
	const tasks, n, acc = 20000, 3, 0.75
	var votes []Vote
	for w := 0; w < n; w++ {
		for tt := 0; tt < tasks; tt++ {
			votes = append(votes, Vote{Worker: w, Task: tt, Acc: acc})
		}
	}
	as, err := SimulateMulti(n, tasks, 2, votes, r)
	if err != nil {
		t.Fatal(err)
	}
	got := MultiAccuracy(as, PluralityVote(as, r), false)
	// Exact binary 3-voter majority: a³ + 3a²(1−a) = 0.84375.
	want := 0.84375
	if math.Abs(got-want) > 0.01 {
		t.Fatalf("k=2 plurality accuracy %v, binary theory %v", got, want)
	}
}

// Property: predictions are always valid labels.
func TestQuickMultiWellFormed(t *testing.T) {
	f := func(seed uint64, kRaw, nRaw uint8) bool {
		k := int(kRaw%6) + 2
		n := int(nRaw%5) + 1
		r := stats.NewRNG(seed)
		const tasks = 30
		var votes []Vote
		for w := 0; w < n; w++ {
			for tt := 0; tt < tasks; tt++ {
				if r.Bool(0.7) {
					votes = append(votes, Vote{Worker: w, Task: tt, Acc: r.Float64()})
				}
			}
		}
		as, err := SimulateMulti(n, tasks, k, votes, r)
		if err != nil {
			return false
		}
		for _, pred := range [][]int{PluralityVote(as, r), WeightedPlurality(as, r)} {
			if len(pred) != tasks {
				return false
			}
			for _, v := range pred {
				if v < 0 || v >= k {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
