// Package quality closes the crowdsourcing loop the paper's abstract opens
// with ("question design, task assignment, answer aggregation"): it
// simulates worker answers for an assignment and aggregates them back into
// task labels, so the evaluation can report *end-to-end* answer accuracy per
// assignment algorithm (R-Fig12) rather than only the abstract benefit
// objective.
//
// Tasks are modelled as binary questions with a hidden ground-truth label.
// Each assigned worker answers correctly with their effective accuracy for
// that task.  Three aggregators are provided:
//
//	MajorityVote  — one worker one vote, ties broken by the caller's RNG;
//	WeightedVote  — log-odds weighting with known accuracies (the oracle
//	                upper bound of accuracy-aware aggregation);
//	EM            — Dawid–Skene-style expectation maximisation for the
//	                binary symmetric model: accuracies are *estimated* from
//	                the answer matrix, labels and accuracies refined
//	                together.
package quality

import (
	"fmt"
	"math"

	"repro/internal/stats"
)

// Vote is one worker's answer slot for one task, carrying the true
// effective accuracy used for simulation (and for oracle weighting).
type Vote struct {
	Worker int
	Task   int
	// Acc is the probability this worker answers this task correctly.
	Acc float64
}

// AnswerSet is the simulated outcome of one assignment: hidden truth plus
// every collected answer.
type AnswerSet struct {
	NumTasks   int
	NumWorkers int
	// Truth[t] is the hidden ground-truth label of task t (0 or 1).
	Truth []int
	// Answers[t] lists the answers collected for task t.
	Answers [][]Answer
}

// Answer is a single collected label.
type Answer struct {
	Worker int
	Label  int
	// Acc is the answering worker's true effective accuracy on this task;
	// only WeightedVote's oracle mode reads it.
	Acc float64
}

// Simulate draws hidden truths uniformly and simulates every vote.  Votes
// must reference workers in [0, numWorkers) and tasks in [0, numTasks);
// it returns an error otherwise.
func Simulate(numWorkers, numTasks int, votes []Vote, r *stats.RNG) (*AnswerSet, error) {
	if numWorkers < 0 || numTasks < 0 {
		return nil, fmt.Errorf("quality: negative sizes")
	}
	as := &AnswerSet{
		NumTasks:   numTasks,
		NumWorkers: numWorkers,
		Truth:      make([]int, numTasks),
		Answers:    make([][]Answer, numTasks),
	}
	for t := range as.Truth {
		if r.Bool(0.5) {
			as.Truth[t] = 1
		}
	}
	for _, v := range votes {
		if v.Worker < 0 || v.Worker >= numWorkers {
			return nil, fmt.Errorf("quality: vote worker %d out of range", v.Worker)
		}
		if v.Task < 0 || v.Task >= numTasks {
			return nil, fmt.Errorf("quality: vote task %d out of range", v.Task)
		}
		if v.Acc < 0 || v.Acc > 1 {
			return nil, fmt.Errorf("quality: vote accuracy %v out of range", v.Acc)
		}
		label := as.Truth[v.Task]
		if !r.Bool(v.Acc) {
			label = 1 - label
		}
		as.Answers[v.Task] = append(as.Answers[v.Task], Answer{Worker: v.Worker, Label: label, Acc: v.Acc})
	}
	return as, nil
}

// MajorityVote aggregates by simple majority; ties (and empty panels) are
// broken uniformly at random via r.
func MajorityVote(as *AnswerSet, r *stats.RNG) []int {
	out := make([]int, as.NumTasks)
	for t, answers := range as.Answers {
		ones := 0
		for _, a := range answers {
			ones += a.Label
		}
		zeros := len(answers) - ones
		switch {
		case ones > zeros:
			out[t] = 1
		case zeros > ones:
			out[t] = 0
		default:
			if r.Bool(0.5) {
				out[t] = 1
			}
		}
	}
	return out
}

// WeightedVote aggregates with the Bayes-optimal log-odds weights computed
// from each answer's true accuracy — the oracle reference showing how much
// headroom accuracy-aware aggregation has over plain majority.  Accuracies
// are clamped into [0.01, 0.99] to keep the weights finite.
func WeightedVote(as *AnswerSet, r *stats.RNG) []int {
	out := make([]int, as.NumTasks)
	for t, answers := range as.Answers {
		score := 0.0 // positive favours label 1
		for _, a := range answers {
			acc := math.Min(0.99, math.Max(0.01, a.Acc))
			w := math.Log(acc / (1 - acc))
			if a.Label == 1 {
				score += w
			} else {
				score -= w
			}
		}
		switch {
		case score > 0:
			out[t] = 1
		case score < 0:
			out[t] = 0
		default:
			if r.Bool(0.5) {
				out[t] = 1
			}
		}
	}
	return out
}

// EM aggregates with expectation maximisation under the one-coin
// Dawid–Skene model: every worker has a single unknown accuracy, labels are
// binary.  It returns the inferred labels and the per-worker accuracy
// estimates (0.5 for workers with no answers).  iters bounds the EM
// rounds; 0 means the default 20, convergence typically happens well
// before.
func EM(as *AnswerSet, iters int, r *stats.RNG) ([]int, []float64) {
	if iters <= 0 {
		iters = 20
	}
	// Posterior P(truth_t = 1), initialised from the unweighted vote share.
	post := make([]float64, as.NumTasks)
	for t, answers := range as.Answers {
		if len(answers) == 0 {
			post[t] = 0.5
			continue
		}
		ones := 0
		for _, a := range answers {
			ones += a.Label
		}
		post[t] = float64(ones) / float64(len(answers))
	}
	acc := make([]float64, as.NumWorkers)

	for iter := 0; iter < iters; iter++ {
		// M-step: worker accuracy = expected fraction of agreements with the
		// current soft labels, with add-one smoothing to avoid 0/1 locks.
		agree := make([]float64, as.NumWorkers)
		count := make([]float64, as.NumWorkers)
		for t, answers := range as.Answers {
			for _, a := range answers {
				p := post[t]
				if a.Label == 1 {
					agree[a.Worker] += p
				} else {
					agree[a.Worker] += 1 - p
				}
				count[a.Worker]++
			}
		}
		for w := range acc {
			if count[w] == 0 {
				acc[w] = 0.5
				continue
			}
			acc[w] = (agree[w] + 1) / (count[w] + 2)
			// The one-coin symmetric model cannot distinguish an adversary
			// from an expert; pin estimates to the informative side, matching
			// the market model's "never worse than a coin flip" invariant.
			if acc[w] < 0.5 {
				acc[w] = 0.5
			} else if acc[w] > 0.99 {
				acc[w] = 0.99
			}
		}
		// E-step: recompute posteriors with the new accuracies.
		for t, answers := range as.Answers {
			if len(answers) == 0 {
				post[t] = 0.5
				continue
			}
			logOdds := 0.0
			for _, a := range answers {
				w := math.Log(acc[a.Worker] / (1 - acc[a.Worker]))
				if a.Label == 1 {
					logOdds += w
				} else {
					logOdds -= w
				}
			}
			post[t] = 1 / (1 + math.Exp(-logOdds))
		}
	}

	out := make([]int, as.NumTasks)
	for t, p := range post {
		switch {
		case p > 0.5:
			out[t] = 1
		case p < 0.5:
			out[t] = 0
		default:
			if r.Bool(0.5) {
				out[t] = 1
			}
		}
	}
	return out, acc
}

// Accuracy returns the fraction of tasks whose predicted label matches the
// truth, restricted to tasks that received at least one answer when
// onlyAnswered is set (unanswered tasks are coin flips and would wash out
// the comparison between aggregators).
func Accuracy(as *AnswerSet, pred []int, onlyAnswered bool) float64 {
	if len(pred) != as.NumTasks {
		panic("quality: prediction length mismatch")
	}
	correct, total := 0, 0
	for t := range pred {
		if onlyAnswered && len(as.Answers[t]) == 0 {
			continue
		}
		total++
		if pred[t] == as.Truth[t] {
			correct++
		}
	}
	if total == 0 {
		return 0
	}
	return float64(correct) / float64(total)
}
