package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestZipfUniformWhenThetaZero(t *testing.T) {
	z := NewZipf(10, 0)
	for k := 0; k < 10; k++ {
		if p := z.PMF(k); math.Abs(p-0.1) > 1e-12 {
			t.Errorf("PMF(%d) = %v, want 0.1", k, p)
		}
	}
}

func TestZipfPMFSumsToOne(t *testing.T) {
	for _, theta := range []float64{0, 0.5, 1, 1.5, 2} {
		z := NewZipf(100, theta)
		sum := 0.0
		for k := 0; k < 100; k++ {
			sum += z.PMF(k)
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("theta=%v: PMF sums to %v", theta, sum)
		}
	}
}

func TestZipfMonotoneDecreasing(t *testing.T) {
	z := NewZipf(50, 1.2)
	for k := 1; k < 50; k++ {
		if z.PMF(k) > z.PMF(k-1)+1e-15 {
			t.Fatalf("PMF not decreasing at %d", k)
		}
	}
}

func TestZipfSampleInRange(t *testing.T) {
	r := NewRNG(21)
	z := NewZipf(17, 1.0)
	for i := 0; i < 10000; i++ {
		k := z.Sample(r)
		if k < 0 || k >= 17 {
			t.Fatalf("sample %d out of range", k)
		}
	}
}

func TestZipfSampleMatchesPMF(t *testing.T) {
	r := NewRNG(22)
	z := NewZipf(8, 1.0)
	const n = 200000
	counts := make([]int, 8)
	for i := 0; i < n; i++ {
		counts[z.Sample(r)]++
	}
	for k := 0; k < 8; k++ {
		got := float64(counts[k]) / n
		want := z.PMF(k)
		if math.Abs(got-want) > 0.01 {
			t.Errorf("rank %d: frequency %v vs PMF %v", k, got, want)
		}
	}
}

func TestZipfSkewConcentratesMass(t *testing.T) {
	flat := NewZipf(100, 0.2)
	steep := NewZipf(100, 1.5)
	if steep.PMF(0) <= flat.PMF(0) {
		t.Fatalf("higher theta should concentrate mass on rank 0: %v vs %v",
			steep.PMF(0), flat.PMF(0))
	}
}

func TestZipfSingleRank(t *testing.T) {
	z := NewZipf(1, 1.3)
	r := NewRNG(23)
	for i := 0; i < 100; i++ {
		if z.Sample(r) != 0 {
			t.Fatal("single-rank Zipf must always return 0")
		}
	}
	if z.PMF(0) != 1 {
		t.Fatalf("PMF(0) = %v", z.PMF(0))
	}
}

func TestZipfPMFOutOfRange(t *testing.T) {
	z := NewZipf(5, 1)
	if z.PMF(-1) != 0 || z.PMF(5) != 0 {
		t.Fatal("out-of-range PMF must be 0")
	}
}

func TestZipfPanics(t *testing.T) {
	for _, tc := range []struct {
		n     int
		theta float64
	}{{0, 1}, {-1, 1}, {5, -0.1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewZipf(%d,%v) did not panic", tc.n, tc.theta)
				}
			}()
			NewZipf(tc.n, tc.theta)
		}()
	}
}

// Property: samples are always valid ranks for arbitrary sizes/skews.
func TestQuickZipfSampleValid(t *testing.T) {
	f := func(seed uint64, n uint8, theta10 uint8) bool {
		size := int(n%200) + 1
		theta := float64(theta10%30) / 10
		z := NewZipf(size, theta)
		r := NewRNG(seed)
		for i := 0; i < 20; i++ {
			k := z.Sample(r)
			if k < 0 || k >= size {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
