package stats

import "math"

// Zipf samples from a Zipf (discrete power-law) distribution over
// {0, 1, …, N-1}: P(k) ∝ 1/(k+1)^theta.
//
// Category popularity on real crowdsourcing and freelance platforms is
// heavily skewed — a few categories (data entry, transcription, web dev)
// receive most tasks while a long tail receives almost none — and Zipf is the
// standard model for that skew.  theta = 0 degenerates to uniform, which lets
// the skew-sweep experiment (R-Fig7) interpolate between an even market and a
// highly concentrated one with a single knob.
//
// Sampling is done by inverse transform over the precomputed CDF with binary
// search: O(N) memory, O(log N) per sample, deterministic given the RNG.
type Zipf struct {
	cdf   []float64
	theta float64
}

// NewZipf builds a Zipf sampler over n ranks with exponent theta >= 0.
// It panics if n <= 0 or theta < 0.
func NewZipf(n int, theta float64) *Zipf {
	if n <= 0 {
		panic("stats: NewZipf with n <= 0")
	}
	if theta < 0 {
		panic("stats: NewZipf with negative theta")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for k := 0; k < n; k++ {
		sum += 1 / math.Pow(float64(k+1), theta)
		cdf[k] = sum
	}
	// Normalise so the last entry is exactly 1.
	for k := range cdf {
		cdf[k] /= sum
	}
	cdf[n-1] = 1
	return &Zipf{cdf: cdf, theta: theta}
}

// N returns the number of ranks.
func (z *Zipf) N() int { return len(z.cdf) }

// Theta returns the skew exponent.
func (z *Zipf) Theta() float64 { return z.theta }

// Sample draws one rank in [0, N).
func (z *Zipf) Sample(r *RNG) int {
	u := r.Float64()
	// Binary search for the first cdf entry >= u.
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// PMF returns the probability of rank k.
func (z *Zipf) PMF(k int) float64 {
	if k < 0 || k >= len(z.cdf) {
		return 0
	}
	if k == 0 {
		return z.cdf[0]
	}
	return z.cdf[k] - z.cdf[k-1]
}
