package stats

import "math"

// Running accumulates mean and variance online using Welford's algorithm.
// The dynamics simulator feeds per-round metrics through it so multi-round
// reports do not need to retain every observation.
type Running struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// NewRunning returns an empty accumulator.
func NewRunning() *Running {
	return &Running{min: math.Inf(1), max: math.Inf(-1)}
}

// Add folds one observation into the accumulator.
func (r *Running) Add(x float64) {
	r.n++
	d := x - r.mean
	r.mean += d / float64(r.n)
	r.m2 += d * (x - r.mean)
	if x < r.min {
		r.min = x
	}
	if x > r.max {
		r.max = x
	}
}

// N returns the number of observations.
func (r *Running) N() int { return r.n }

// Mean returns the running mean (0 when empty).
func (r *Running) Mean() float64 {
	if r.n == 0 {
		return 0
	}
	return r.mean
}

// Var returns the running sample variance (0 for n < 2).
func (r *Running) Var() float64 {
	if r.n < 2 {
		return 0
	}
	return r.m2 / float64(r.n-1)
}

// Std returns the running sample standard deviation.
func (r *Running) Std() float64 { return math.Sqrt(r.Var()) }

// Min returns the smallest observation (+Inf when empty).
func (r *Running) Min() float64 { return r.min }

// Max returns the largest observation (-Inf when empty).
func (r *Running) Max() float64 { return r.max }

// Merge folds another accumulator into r (parallel Welford / Chan et al.).
func (r *Running) Merge(o *Running) {
	if o.n == 0 {
		return
	}
	if r.n == 0 {
		*r = *o
		return
	}
	nA, nB := float64(r.n), float64(o.n)
	delta := o.mean - r.mean
	total := nA + nB
	r.mean += delta * nB / total
	r.m2 += o.m2 + delta*delta*nA*nB/total
	r.n += o.n
	if o.min < r.min {
		r.min = o.min
	}
	if o.max > r.max {
		r.max = o.max
	}
}
