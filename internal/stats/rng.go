// Package stats provides the deterministic random-number substrate and the
// descriptive-statistics helpers used throughout the library.
//
// Every stochastic component in the reproduction (workload generators, answer
// simulation, online arrival orders, randomised algorithms) draws from an
// *explicit* stats.RNG seeded by the caller, never from a global source.
// This keeps experiments bit-for-bit reproducible: the same seed always
// yields the same market, the same arrival order and the same simulated
// answers, on any platform, independent of Go's math/rand evolution.
package stats

import "math"

// RNG is a small, fast, deterministic pseudo-random generator based on the
// PCG-XSH-RR 64/32 construction (O'Neill 2014) layered over a splitmix64
// seeding routine.  It is intentionally self-contained so that experiment
// outputs never change under Go toolchain upgrades.
//
// RNG is not safe for concurrent use; give each goroutine its own instance
// (see Split).
type RNG struct {
	state uint64
	inc   uint64
}

// splitmix64 advances a seed and returns a well-mixed 64-bit value.  It is
// the standard seeding function for PCG-family generators.
func splitmix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// NewRNG returns a generator deterministically derived from seed.
func NewRNG(seed uint64) *RNG {
	s := seed
	r := &RNG{}
	r.state = splitmix64(&s)
	r.inc = splitmix64(&s) | 1 // increment must be odd
	return r
}

// Split derives an independent child generator.  The child's stream is a
// deterministic function of the parent's current state, so calling Split at
// the same point in a run always yields the same child.  Use it to hand
// private generators to parallel workers without sharing state.
func (r *RNG) Split() *RNG {
	s := r.Uint64() ^ 0xd3833e804f4c574b
	return NewRNG(s)
}

// Uint64 returns the next 64 bits of the stream (two PCG-32 outputs).
func (r *RNG) Uint64() uint64 {
	hi := uint64(r.Uint32())
	lo := uint64(r.Uint32())
	return hi<<32 | lo
}

// Uint32 returns the next 32 bits of the stream.
func (r *RNG) Uint32() uint32 {
	old := r.state
	r.state = old*6364136223846793005 + r.inc
	xorshifted := uint32(((old >> 18) ^ old) >> 27)
	rot := uint32(old >> 59)
	return (xorshifted >> rot) | (xorshifted << ((-rot) & 31))
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	// 53 random bits / 2^53, the standard full-precision construction.
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform int in [0, n).  It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("stats: Intn called with non-positive n")
	}
	// Lemire's nearly-divisionless bounded generation.
	bound := uint64(n)
	x := r.Uint64()
	hi, lo := mul64(x, bound)
	if lo < bound {
		threshold := (-bound) % bound
		for lo < threshold {
			x = r.Uint64()
			hi, lo = mul64(x, bound)
		}
	}
	return int(hi)
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	a0, a1 := a&mask32, a>>32
	b0, b1 := b&mask32, b>>32
	t := a1*b0 + (a0*b0)>>32
	w1 := t & mask32
	w2 := t >> 32
	w1 += a0 * b1
	hi = a1*b1 + w2 + (w1 >> 32)
	lo = a * b
	return hi, lo
}

// IntRange returns a uniform int in [lo, hi] inclusive.  It panics if
// hi < lo.
func (r *RNG) IntRange(lo, hi int) int {
	if hi < lo {
		panic("stats: IntRange with hi < lo")
	}
	return lo + r.Intn(hi-lo+1)
}

// Float64Range returns a uniform float64 in [lo, hi).
func (r *RNG) Float64Range(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool {
	return r.Float64() < p
}

// Perm returns a uniformly random permutation of [0, n) (Fisher–Yates).
func (r *RNG) Perm(n int) []int {
	return r.PermInto(nil, n)
}

// PermInto is Perm writing into buf when its capacity suffices, so repeated
// draws of same-length permutations (the online solvers' arrival orders)
// allocate nothing.  It draws exactly the same RNG stream as Perm, so a
// caller switching between the two never perturbs downstream randomness.
func (r *RNG) PermInto(buf []int, n int) []int {
	var p []int
	if cap(buf) >= n {
		p = buf[:n]
	} else {
		p = make([]int, n)
	}
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle permutes s in place uniformly at random.
func Shuffle[T any](r *RNG, s []T) {
	for i := len(s) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		s[i], s[j] = s[j], s[i]
	}
}

// Choice returns a uniformly random element of s.  It panics on an empty
// slice.
func Choice[T any](r *RNG, s []T) T {
	if len(s) == 0 {
		panic("stats: Choice on empty slice")
	}
	return s[r.Intn(len(s))]
}

// Normal returns a sample from the standard normal distribution using the
// Box–Muller transform (the polar variant is avoided so the number of RNG
// draws per sample is fixed, preserving stream alignment).
func (r *RNG) Normal() float64 {
	// Guard against log(0).
	u1 := 1 - r.Float64()
	u2 := r.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// NormalMS returns a normal sample with the given mean and standard
// deviation.
func (r *RNG) NormalMS(mean, std float64) float64 {
	return mean + std*r.Normal()
}

// TruncNormal returns a normal(mean, std) sample clamped to [lo, hi] by
// rejection with a bounded retry count; after 64 rejections it clamps, which
// keeps the generator total even for pathological intervals.
func (r *RNG) TruncNormal(mean, std, lo, hi float64) float64 {
	for i := 0; i < 64; i++ {
		x := r.NormalMS(mean, std)
		if x >= lo && x <= hi {
			return x
		}
	}
	return math.Min(hi, math.Max(lo, mean))
}

// Exp returns an exponential sample with the given rate (mean 1/rate).
func (r *RNG) Exp(rate float64) float64 {
	return -math.Log(1-r.Float64()) / rate
}

// LogNormal returns a log-normal sample with the given parameters of the
// underlying normal (mu, sigma).  Real labor-market prices are famously
// log-normal, which is why the trace generators use this.
func (r *RNG) LogNormal(mu, sigma float64) float64 {
	return math.Exp(r.NormalMS(mu, sigma))
}

// Pareto returns a Pareto(scale, alpha) sample: heavy-tailed with minimum
// value scale.
func (r *RNG) Pareto(scale, alpha float64) float64 {
	u := 1 - r.Float64()
	return scale / math.Pow(u, 1/alpha)
}
