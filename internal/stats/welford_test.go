package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRunningMatchesBatch(t *testing.T) {
	r := NewRNG(41)
	xs := make([]float64, 500)
	run := NewRunning()
	for i := range xs {
		xs[i] = r.NormalMS(10, 3)
		run.Add(xs[i])
	}
	s := Summarize(xs)
	if !almostEq(run.Mean(), s.Mean, 1e-9) {
		t.Fatalf("mean %v vs %v", run.Mean(), s.Mean)
	}
	if !almostEq(run.Std(), s.Std, 1e-9) {
		t.Fatalf("std %v vs %v", run.Std(), s.Std)
	}
	if run.Min() != s.Min || run.Max() != s.Max || run.N() != s.N {
		t.Fatal("min/max/n mismatch")
	}
}

func TestRunningEmpty(t *testing.T) {
	run := NewRunning()
	if run.Mean() != 0 || run.Var() != 0 || run.N() != 0 {
		t.Fatal("empty Running should report zeros")
	}
	if !math.IsInf(run.Min(), 1) || !math.IsInf(run.Max(), -1) {
		t.Fatal("empty Running min/max should be infinities")
	}
}

func TestRunningMergeEquivalence(t *testing.T) {
	r := NewRNG(42)
	whole := NewRunning()
	a, b := NewRunning(), NewRunning()
	for i := 0; i < 1000; i++ {
		x := r.Float64Range(-5, 5)
		whole.Add(x)
		if i%2 == 0 {
			a.Add(x)
		} else {
			b.Add(x)
		}
	}
	a.Merge(b)
	if !almostEq(a.Mean(), whole.Mean(), 1e-9) || !almostEq(a.Var(), whole.Var(), 1e-9) {
		t.Fatalf("merged (%v,%v) vs whole (%v,%v)", a.Mean(), a.Var(), whole.Mean(), whole.Var())
	}
	if a.N() != whole.N() || a.Min() != whole.Min() || a.Max() != whole.Max() {
		t.Fatal("merged n/min/max mismatch")
	}
}

func TestRunningMergeWithEmpty(t *testing.T) {
	a := NewRunning()
	a.Add(1)
	a.Add(3)
	empty := NewRunning()
	a.Merge(empty)
	if a.N() != 2 || a.Mean() != 2 {
		t.Fatal("merging empty changed accumulator")
	}
	empty2 := NewRunning()
	empty2.Merge(a)
	if empty2.N() != 2 || empty2.Mean() != 2 {
		t.Fatal("merging into empty failed")
	}
}

// Property: merge order never matters for the mean (commutativity up to fp).
func TestQuickRunningMergeCommutes(t *testing.T) {
	f := func(xs, ys []float64) bool {
		clean := func(in []float64) []float64 {
			out := make([]float64, 0, len(in))
			for _, x := range in {
				if !math.IsNaN(x) && !math.IsInf(x, 0) {
					out = append(out, math.Mod(x, 1e4))
				}
			}
			return out
		}
		xs, ys = clean(xs), clean(ys)
		a1, b1 := NewRunning(), NewRunning()
		a2, b2 := NewRunning(), NewRunning()
		for _, x := range xs {
			a1.Add(x)
			a2.Add(x)
		}
		for _, y := range ys {
			b1.Add(y)
			b2.Add(y)
		}
		a1.Merge(b1) // xs then ys
		b2.Merge(a2) // ys then xs
		if a1.N() != b2.N() {
			return false
		}
		if a1.N() == 0 {
			return true
		}
		return almostEq(a1.Mean(), b2.Mean(), 1e-6) && almostEq(a1.Var(), b2.Var(), 1e-4)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
