package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 || s.Mean != 0 || s.Sum != 0 {
		t.Fatalf("empty summary not zero: %+v", s)
	}
}

func TestSummarizeSingle(t *testing.T) {
	s := Summarize([]float64{3.5})
	if s.N != 1 || s.Mean != 3.5 || s.Min != 3.5 || s.Max != 3.5 || s.Median != 3.5 {
		t.Fatalf("bad single summary: %+v", s)
	}
	if s.Std != 0 {
		t.Fatalf("single-element std = %v", s.Std)
	}
}

func TestSummarizeKnown(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.Sum != 15 || s.Median != 3 {
		t.Fatalf("bad summary: %+v", s)
	}
	if !almostEq(s.Std, math.Sqrt(2.5), 1e-12) {
		t.Fatalf("std = %v", s.Std)
	}
}

func TestPercentileInterpolation(t *testing.T) {
	sorted := []float64{0, 10}
	if got := Percentile(sorted, 0.5); got != 5 {
		t.Fatalf("P50 of {0,10} = %v", got)
	}
	if got := Percentile(sorted, 0); got != 0 {
		t.Fatalf("P0 = %v", got)
	}
	if got := Percentile(sorted, 1); got != 10 {
		t.Fatalf("P100 = %v", got)
	}
}

func TestPercentilePanics(t *testing.T) {
	for _, p := range []float64{-0.1, 1.1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Percentile(%v) did not panic", p)
				}
			}()
			Percentile([]float64{1}, p)
		}()
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Percentile of empty did not panic")
			}
		}()
		Percentile(nil, 0.5)
	}()
}

func TestMeanSumStd(t *testing.T) {
	xs := []float64{2, 4, 6}
	if Mean(xs) != 4 || Sum(xs) != 12 {
		t.Fatal("mean/sum wrong")
	}
	if Mean(nil) != 0 || Sum(nil) != 0 || Std(nil) != 0 || Std([]float64{1}) != 0 {
		t.Fatal("empty-case handling wrong")
	}
	if !almostEq(Std(xs), 2, 1e-12) {
		t.Fatalf("std = %v", Std(xs))
	}
}

func TestJainIndexExtremes(t *testing.T) {
	if JainIndex([]float64{5, 5, 5, 5}) != 1 {
		t.Fatal("equal allocation should have Jain 1")
	}
	got := JainIndex([]float64{1, 0, 0, 0})
	if !almostEq(got, 0.25, 1e-12) {
		t.Fatalf("single-winner Jain = %v, want 0.25", got)
	}
	if JainIndex(nil) != 1 || JainIndex([]float64{0, 0}) != 1 {
		t.Fatal("degenerate Jain should be 1")
	}
}

func TestGiniExtremes(t *testing.T) {
	if g := Gini([]float64{3, 3, 3}); !almostEq(g, 0, 1e-12) {
		t.Fatalf("equal Gini = %v", g)
	}
	// Single winner among n participants has Gini (n-1)/n.
	if g := Gini([]float64{0, 0, 0, 10}); !almostEq(g, 0.75, 1e-12) {
		t.Fatalf("winner-take-all Gini = %v, want 0.75", g)
	}
	if Gini(nil) != 0 || Gini([]float64{0, 0}) != 0 {
		t.Fatal("degenerate Gini should be 0")
	}
}

func TestGiniPanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Gini with negative value did not panic")
		}
	}()
	Gini([]float64{-1, 1})
}

func TestCI95ShrinksWithN(t *testing.T) {
	r := NewRNG(31)
	small := make([]float64, 10)
	large := make([]float64, 1000)
	for i := range small {
		small[i] = r.Normal()
	}
	for i := range large {
		large[i] = r.Normal()
	}
	if CI95(large) >= CI95(small) {
		t.Fatalf("CI should shrink with n: %v vs %v", CI95(large), CI95(small))
	}
	if CI95([]float64{1}) != 0 {
		t.Fatal("CI95 of 1 sample should be 0")
	}
}

// Property: Summarize invariants hold for arbitrary samples.
func TestQuickSummarizeInvariants(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, math.Mod(x, 1e6))
			}
		}
		s := Summarize(xs)
		if s.N != len(xs) {
			return false
		}
		if len(xs) == 0 {
			return true
		}
		return s.Min <= s.Median && s.Median <= s.Max &&
			s.Min <= s.Mean && s.Mean <= s.Max &&
			s.P90 <= s.Max && s.P90 >= s.Min &&
			s.Std >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Jain index is always within [1/n, 1] for non-trivial samples.
func TestQuickJainBounds(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, math.Abs(math.Mod(x, 1e6)))
			}
		}
		if len(xs) == 0 {
			return JainIndex(xs) == 1
		}
		j := JainIndex(xs)
		return j >= 1/float64(len(xs))-1e-9 && j <= 1+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
