package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary holds descriptive statistics of a sample.  All experiment tables
// report through this type so formatting is uniform.
type Summary struct {
	N      int
	Mean   float64
	Std    float64 // sample standard deviation (n-1 denominator)
	Min    float64
	Max    float64
	Median float64
	P90    float64
	P99    float64
	Sum    float64
}

// Summarize computes a Summary of xs.  An empty sample yields a zero Summary
// with N == 0 rather than NaNs so tables render cleanly.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: math.Inf(1), Max: math.Inf(-1)}
	for _, x := range xs {
		s.Sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = s.Sum / float64(len(xs))
	if len(xs) > 1 {
		var ss float64
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.Std = math.Sqrt(ss / float64(len(xs)-1))
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s.Median = Percentile(sorted, 0.50)
	s.P90 = Percentile(sorted, 0.90)
	s.P99 = Percentile(sorted, 0.99)
	return s
}

// Percentile returns the p-quantile (p in [0,1]) of an ascending-sorted
// sample using linear interpolation between closest ranks.  It panics if the
// sample is empty or p is outside [0,1].
func Percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		panic("stats: Percentile of empty sample")
	}
	if p < 0 || p > 1 {
		panic(fmt.Sprintf("stats: Percentile p=%v out of [0,1]", p))
	}
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := p * float64(len(sorted)-1)
	i := int(math.Floor(pos))
	frac := pos - float64(i)
	if i+1 >= len(sorted) {
		return sorted[len(sorted)-1]
	}
	return sorted[i]*(1-frac) + sorted[i+1]*frac
}

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Sum returns the sum of xs.
func Sum(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}

// Std returns the sample standard deviation of xs (0 for n < 2).
func Std(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)-1))
}

// JainIndex returns Jain's fairness index of xs:
// (Σx)² / (n·Σx²), which is 1 for perfectly equal allocations and 1/n when a
// single participant receives everything.  The experiment suite uses it to
// quantify how evenly benefit is spread across workers.
// An empty or all-zero sample returns 1 (vacuously fair).
func JainIndex(xs []float64) float64 {
	if len(xs) == 0 {
		return 1
	}
	var sum, sq float64
	for _, x := range xs {
		sum += x
		sq += x * x
	}
	if sq == 0 {
		return 1
	}
	return sum * sum / (float64(len(xs)) * sq)
}

// Gini returns the Gini coefficient of non-negative xs: 0 for perfect
// equality, approaching 1 for maximal concentration.  Negative values are
// not meaningful for benefit allocations and cause a panic.
func Gini(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if sorted[0] < 0 {
		panic("stats: Gini requires non-negative values")
	}
	n := float64(len(sorted))
	var cum, weighted float64
	for i, x := range sorted {
		cum += x
		weighted += float64(i+1) * x
	}
	if cum == 0 {
		return 0
	}
	return (2*weighted)/(n*cum) - (n+1)/n
}

// CI95 returns the half-width of a ~95% confidence interval for the mean of
// xs using the normal approximation (1.96·s/√n).  With the experiment
// repetition counts used here (≥10) the normal approximation is adequate and
// avoids shipping a t-table.
func CI95(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	return 1.96 * Std(xs) / math.Sqrt(float64(len(xs)))
}
