package stats

import (
	"fmt"
	"strings"
)

// Histogram is a fixed-width-bin histogram over [Lo, Hi).  Values outside the
// range are clamped into the first/last bin so no observation is silently
// dropped — workload generators use it to sanity-report the distributions
// they emit.
type Histogram struct {
	Lo, Hi float64
	Counts []int
	total  int
}

// NewHistogram creates a histogram with bins equal-width bins over [lo, hi).
// It panics if bins <= 0 or hi <= lo.
func NewHistogram(lo, hi float64, bins int) *Histogram {
	if bins <= 0 {
		panic("stats: NewHistogram with bins <= 0")
	}
	if hi <= lo {
		panic("stats: NewHistogram with hi <= lo")
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, bins)}
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	bins := len(h.Counts)
	i := int(float64(bins) * (x - h.Lo) / (h.Hi - h.Lo))
	if i < 0 {
		i = 0
	}
	if i >= bins {
		i = bins - 1
	}
	h.Counts[i]++
	h.total++
}

// Total returns the number of recorded observations.
func (h *Histogram) Total() int { return h.total }

// Frac returns the fraction of observations in bin i.
func (h *Histogram) Frac(i int) float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.Counts[i]) / float64(h.total)
}

// String renders a compact ASCII bar chart, one line per bin.
func (h *Histogram) String() string {
	var b strings.Builder
	maxCount := 0
	for _, c := range h.Counts {
		if c > maxCount {
			maxCount = c
		}
	}
	width := (h.Hi - h.Lo) / float64(len(h.Counts))
	for i, c := range h.Counts {
		bar := 0
		if maxCount > 0 {
			bar = c * 40 / maxCount
		}
		fmt.Fprintf(&b, "[%8.3f,%8.3f) %6d %s\n",
			h.Lo+float64(i)*width, h.Lo+float64(i+1)*width, c,
			strings.Repeat("#", bar))
	}
	return b.String()
}
