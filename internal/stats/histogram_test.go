package stats

import (
	"strings"
	"testing"
)

func TestHistogramBinning(t *testing.T) {
	h := NewHistogram(0, 1, 4)
	h.Add(0.1)  // bin 0
	h.Add(0.3)  // bin 1
	h.Add(0.55) // bin 2
	h.Add(0.99) // bin 3
	want := []int{1, 1, 1, 1}
	for i, w := range want {
		if h.Counts[i] != w {
			t.Fatalf("bin %d = %d, want %d (counts %v)", i, h.Counts[i], w, h.Counts)
		}
	}
	if h.Total() != 4 {
		t.Fatalf("total = %d", h.Total())
	}
}

func TestHistogramClampsOutOfRange(t *testing.T) {
	h := NewHistogram(0, 1, 2)
	h.Add(-5)
	h.Add(7)
	if h.Counts[0] != 1 || h.Counts[1] != 1 {
		t.Fatalf("clamping failed: %v", h.Counts)
	}
}

func TestHistogramFrac(t *testing.T) {
	h := NewHistogram(0, 10, 2)
	if h.Frac(0) != 0 {
		t.Fatal("empty histogram frac should be 0")
	}
	h.Add(1)
	h.Add(2)
	h.Add(8)
	if got := h.Frac(0); !almostEq(got, 2.0/3.0, 1e-12) {
		t.Fatalf("Frac(0) = %v", got)
	}
}

func TestHistogramString(t *testing.T) {
	h := NewHistogram(0, 1, 3)
	for i := 0; i < 10; i++ {
		h.Add(0.5)
	}
	s := h.String()
	if !strings.Contains(s, "#") || strings.Count(s, "\n") != 3 {
		t.Fatalf("unexpected render:\n%s", s)
	}
}

func TestHistogramPanics(t *testing.T) {
	for _, tc := range []struct {
		lo, hi float64
		bins   int
	}{{0, 1, 0}, {1, 0, 3}, {1, 1, 3}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewHistogram(%v,%v,%d) did not panic", tc.lo, tc.hi, tc.bins)
				}
			}()
			NewHistogram(tc.lo, tc.hi, tc.bins)
		}()
	}
}
