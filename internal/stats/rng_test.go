package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestRNGSeedsDiffer(t *testing.T) {
	a := NewRNG(1)
	b := NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("seeds 1 and 2 produced %d/100 identical outputs", same)
	}
}

func TestRNGSplitIndependence(t *testing.T) {
	parent := NewRNG(7)
	child := parent.Split()
	// Child must be deterministic: splitting again from the same parent state
	// (reconstructed) yields the same child stream.
	parent2 := NewRNG(7)
	child2 := parent2.Split()
	for i := 0; i < 100; i++ {
		if child.Uint64() != child2.Uint64() {
			t.Fatalf("split children diverged at step %d", i)
		}
	}
}

func TestFloat64Range01(t *testing.T) {
	r := NewRNG(3)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestIntnBounds(t *testing.T) {
	r := NewRNG(4)
	for _, n := range []int{1, 2, 3, 7, 100, 1 << 20} {
		for i := 0; i < 1000; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestIntnUniformity(t *testing.T) {
	r := NewRNG(5)
	const n, trials = 10, 100000
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		counts[r.Intn(n)]++
	}
	want := float64(trials) / n
	for k, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("bucket %d: got %d want ~%.0f", k, c, want)
		}
	}
}

func TestIntRange(t *testing.T) {
	r := NewRNG(6)
	seen := map[int]bool{}
	for i := 0; i < 1000; i++ {
		v := r.IntRange(3, 5)
		if v < 3 || v > 5 {
			t.Fatalf("IntRange(3,5) = %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 3 {
		t.Fatalf("IntRange(3,5) only produced %v", seen)
	}
	if got := r.IntRange(9, 9); got != 9 {
		t.Fatalf("IntRange(9,9) = %d", got)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRNG(8)
	for _, n := range []int{0, 1, 2, 10, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) invalid: %v", n, p)
			}
			seen[v] = true
		}
	}
}

func TestShuffleKeepsMultiset(t *testing.T) {
	r := NewRNG(9)
	s := []int{1, 2, 2, 3, 5, 8}
	sum := 0
	for _, v := range s {
		sum += v
	}
	Shuffle(r, s)
	sum2 := 0
	for _, v := range s {
		sum2 += v
	}
	if sum != sum2 || len(s) != 6 {
		t.Fatalf("shuffle changed contents: %v", s)
	}
}

func TestNormalMoments(t *testing.T) {
	r := NewRNG(10)
	const n = 200000
	var sum, sq float64
	for i := 0; i < n; i++ {
		x := r.Normal()
		sum += x
		sq += x * x
	}
	mean := sum / n
	variance := sq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("normal variance = %v, want ~1", variance)
	}
}

func TestTruncNormalBounds(t *testing.T) {
	r := NewRNG(11)
	for i := 0; i < 10000; i++ {
		x := r.TruncNormal(0.5, 0.3, 0, 1)
		if x < 0 || x > 1 {
			t.Fatalf("TruncNormal escaped bounds: %v", x)
		}
	}
	// Pathological interval far from the mean must still terminate and land
	// inside the bounds.
	x := r.TruncNormal(0, 0.001, 10, 11)
	if x < 10 || x > 11 {
		t.Fatalf("TruncNormal pathological clamp = %v", x)
	}
}

func TestLogNormalPositive(t *testing.T) {
	r := NewRNG(12)
	for i := 0; i < 10000; i++ {
		if v := r.LogNormal(2, 0.8); v <= 0 {
			t.Fatalf("LogNormal emitted non-positive %v", v)
		}
	}
}

func TestExpMean(t *testing.T) {
	r := NewRNG(13)
	const n = 100000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.Exp(2)
	}
	if m := sum / n; math.Abs(m-0.5) > 0.02 {
		t.Errorf("Exp(2) mean = %v, want ~0.5", m)
	}
}

func TestParetoMinimum(t *testing.T) {
	r := NewRNG(14)
	for i := 0; i < 10000; i++ {
		if v := r.Pareto(3, 1.5); v < 3 {
			t.Fatalf("Pareto below scale: %v", v)
		}
	}
}

func TestBoolProbability(t *testing.T) {
	r := NewRNG(15)
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	if p := float64(hits) / n; math.Abs(p-0.3) > 0.01 {
		t.Errorf("Bool(0.3) frequency = %v", p)
	}
}

func TestChoice(t *testing.T) {
	r := NewRNG(16)
	s := []string{"a", "b", "c"}
	seen := map[string]bool{}
	for i := 0; i < 300; i++ {
		seen[Choice(r, s)] = true
	}
	if len(seen) != 3 {
		t.Fatalf("Choice never returned some elements: %v", seen)
	}
}

// Property: Intn output is always in range, for arbitrary seeds and sizes.
func TestQuickIntnInRange(t *testing.T) {
	f := func(seed uint64, n uint16) bool {
		size := int(n%1000) + 1
		r := NewRNG(seed)
		for i := 0; i < 50; i++ {
			v := r.Intn(size)
			if v < 0 || v >= size {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: mul64 agrees with big-integer multiplication on the low 64 bits
// and with float estimation on the high bits for small operands.
func TestQuickMul64Lo(t *testing.T) {
	f := func(a, b uint64) bool {
		_, lo := mul64(a, b)
		return lo == a*b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMul64KnownValues(t *testing.T) {
	cases := []struct{ a, b, hi, lo uint64 }{
		{0, 0, 0, 0},
		{1, 1, 0, 1},
		{1 << 32, 1 << 32, 1, 0},
		{math.MaxUint64, 2, 1, math.MaxUint64 - 1},
		{math.MaxUint64, math.MaxUint64, math.MaxUint64 - 1, 1},
	}
	for _, c := range cases {
		hi, lo := mul64(c.a, c.b)
		if hi != c.hi || lo != c.lo {
			t.Errorf("mul64(%d,%d) = (%d,%d), want (%d,%d)", c.a, c.b, hi, lo, c.hi, c.lo)
		}
	}
}
