package benefit

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMajorityEmpty(t *testing.T) {
	if got := MajorityCorrectProb(nil); got != 0.5 {
		t.Fatalf("empty panel = %v, want 0.5", got)
	}
}

func TestMajoritySingle(t *testing.T) {
	for _, a := range []float64{0.5, 0.7, 0.99} {
		if got := MajorityCorrectProb([]float64{a}); math.Abs(got-a) > 1e-12 {
			t.Fatalf("single voter %v → %v", a, got)
		}
	}
}

func TestMajorityTwoVotersWithTie(t *testing.T) {
	// Two voters with accuracy a: correct if both right (a²) plus half of
	// the tie mass (2a(1-a)/2 = a(1-a)) → a² + a − a² = a.
	for _, a := range []float64{0.6, 0.8} {
		got := MajorityCorrectProb([]float64{a, a})
		if math.Abs(got-a) > 1e-12 {
			t.Fatalf("two voters %v → %v, want %v", a, got, a)
		}
	}
}

func TestMajorityThreeVotersCondorcet(t *testing.T) {
	// Classic Condorcet jury: 3 voters at 0.8 → 0.8³ + 3·0.8²·0.2 = 0.896.
	got := MajorityCorrectProb([]float64{0.8, 0.8, 0.8})
	if math.Abs(got-0.896) > 1e-12 {
		t.Fatalf("got %v, want 0.896", got)
	}
}

func TestMajorityImprovesWithGoodVoters(t *testing.T) {
	// Condorcet's jury theorem: with voters above 0.5, bigger odd panels are
	// better.
	prev := 0.0
	for n := 1; n <= 9; n += 2 {
		accs := make([]float64, n)
		for i := range accs {
			accs[i] = 0.7
		}
		p := MajorityCorrectProb(accs)
		if p <= prev {
			t.Fatalf("panel %d did not improve: %v <= %v", n, p, prev)
		}
		prev = p
	}
}

func TestMajorityCoinFlippersStayAtHalf(t *testing.T) {
	accs := []float64{0.5, 0.5, 0.5, 0.5, 0.5}
	if got := MajorityCorrectProb(accs); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("coin-flip panel = %v", got)
	}
}

// bruteMajority enumerates all 2^n outcomes.
func bruteMajority(accs []float64) float64 {
	n := len(accs)
	if n == 0 {
		return 0.5
	}
	total := 0.0
	for mask := 0; mask < 1<<n; mask++ {
		p := 1.0
		correct := 0
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				p *= accs[i]
				correct++
			} else {
				p *= 1 - accs[i]
			}
		}
		if 2*correct > n {
			total += p
		} else if 2*correct == n {
			total += 0.5 * p
		}
	}
	return total
}

func TestMajorityMatchesBruteForce(t *testing.T) {
	cases := [][]float64{
		{0.6},
		{0.9, 0.55},
		{0.8, 0.7, 0.6},
		{0.95, 0.5, 0.5, 0.5},
		{0.6, 0.7, 0.8, 0.9, 0.55},
		{0.51, 0.52, 0.53, 0.54, 0.55, 0.56},
	}
	for _, accs := range cases {
		got := MajorityCorrectProb(accs)
		want := bruteMajority(accs)
		if math.Abs(got-want) > 1e-12 {
			t.Errorf("%v: DP %v vs brute %v", accs, got, want)
		}
	}
}

func TestMajorityGainClampedNonNegative(t *testing.T) {
	// Adding a coin flipper to an odd strong panel strictly hurts the raw
	// probability (creates tie mass); the clamped gain must be 0.
	if g := MajorityGain([]float64{0.9, 0.9, 0.9}, 0.5); g != 0 {
		t.Fatalf("gain = %v, want clamp to 0", g)
	}
	if g := MajorityGain(nil, 0.8); math.Abs(g-0.3) > 1e-12 {
		t.Fatalf("first-voter gain = %v, want 0.3", g)
	}
}

func TestMajorityGainDoesNotMutateInput(t *testing.T) {
	accs := []float64{0.7, 0.8}
	MajorityGain(accs, 0.9)
	if accs[0] != 0.7 || accs[1] != 0.8 || len(accs) != 2 {
		t.Fatal("MajorityGain mutated its input")
	}
}

// Property: the DP always matches brute force for small random panels, and
// the result is within [0,1].
func TestQuickMajorityMatchesBrute(t *testing.T) {
	f := func(raw []uint16) bool {
		n := len(raw)
		if n > 8 {
			n = 8
		}
		accs := make([]float64, n)
		for i := 0; i < n; i++ {
			accs[i] = 0.5 + float64(raw[i]%500)/1000 // [0.5, 1)
		}
		got := MajorityCorrectProb(accs)
		if got < 0 || got > 1 {
			return false
		}
		return math.Abs(got-bruteMajority(accs)) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: diminishing returns — the gain from the k-th identical voter
// shrinks as the panel grows (checked on odd panel sizes where majority
// strictly improves).
func TestMajorityDiminishingReturns(t *testing.T) {
	a := 0.75
	gain := func(n int) float64 {
		accs := make([]float64, n)
		for i := range accs {
			accs[i] = a
		}
		// Gain of going n → n+2 (keeping parity avoids tie effects).
		more := append(append([]float64{}, accs...), a, a)
		return MajorityCorrectProb(more) - MajorityCorrectProb(accs)
	}
	if !(gain(1) > gain(3) && gain(3) > gain(5)) {
		t.Fatalf("gains not diminishing: %v %v %v", gain(1), gain(3), gain(5))
	}
}
