// Package benefit implements the paper's central modelling contribution:
// per-pair benefit functions for both sides of the bipartite labor market
// and the combiners that merge them into a single *mutual* benefit.
//
// Prior task-assignment work optimises the requester side alone (expected
// answer quality); the paper's abstract argues a good assignment must also
// "boost the workers' willingness to participate".  This package therefore
// exposes three per-pair quantities —
//
//	Quality(w, t)       requester-side benefit in [0, 1]
//	WorkerUtility(w, t) worker-side benefit in [0, 1]
//	Mutual(w, t)        combined benefit in [0, 1]
//
// — and three combiners for the last (weighted sum, Nash product,
// egalitarian min), selected through Params.
package benefit

import (
	"fmt"
	"math"

	"repro/internal/market"
)

// Combiner selects how the two sides' benefits merge into one value.
type Combiner int

const (
	// WeightedSum is λ·q + (1−λ)·b — the paper family's default, linear in
	// the trade-off knob λ.
	WeightedSum Combiner = iota
	// NashProduct is sqrt(q·b) — the geometric mean, echoing the Nash
	// bargaining solution: a pair that is worthless to either side is
	// worthless overall.
	NashProduct
	// Egalitarian is min(q, b) — the Rawlsian combiner; maximising it favors
	// pairs that are decent for *both* sides.
	Egalitarian
)

// String names the combiner for reports.
func (c Combiner) String() string {
	switch c {
	case WeightedSum:
		return "weighted-sum"
	case NashProduct:
		return "nash-product"
	case Egalitarian:
		return "egalitarian"
	default:
		return fmt.Sprintf("combiner(%d)", int(c))
	}
}

// Params are the benefit-model knobs.
type Params struct {
	// Lambda in [0,1] weights the requester side in WeightedSum; 1 recovers
	// classical quality-only assignment, 0 a pure worker market.
	Lambda float64
	// Beta in [0,1] weights money vs. interest inside the worker utility.
	Beta float64
	// Combiner selects the mutual-benefit combiner.
	Combiner Combiner
}

// DefaultParams returns the balanced defaults used throughout the
// evaluation: λ = β = 0.5 with the weighted-sum combiner.
func DefaultParams() Params {
	return Params{Lambda: 0.5, Beta: 0.5, Combiner: WeightedSum}
}

// Validate rejects out-of-range parameters.
func (p Params) Validate() error {
	if p.Lambda < 0 || p.Lambda > 1 {
		return fmt.Errorf("benefit: Lambda %v outside [0,1]", p.Lambda)
	}
	if p.Beta < 0 || p.Beta > 1 {
		return fmt.Errorf("benefit: Beta %v outside [0,1]", p.Beta)
	}
	if p.Combiner < WeightedSum || p.Combiner > Egalitarian {
		return fmt.Errorf("benefit: unknown combiner %d", int(p.Combiner))
	}
	return nil
}

// Model evaluates benefits over one market instance.
//
// NewModel precomputes the per-(worker, category) terms of Quality and
// WorkerUtility into flat tables so problem construction — which evaluates
// every eligible pair — pays the profile lookups once per worker instead of
// once per edge.  The tables only cover workers present (with well-formed
// profiles) when the model was created; lookups for any other worker
// pointer fall back to the direct formulas, so instances that keep mutating
// after NewModel (e.g. core.Incremental's backing store) stay correct.
type Model struct {
	in *market.Instance
	p  Params

	// memoWorkers is the number of leading in.Workers covered by the memo
	// tables; 0 disables memoization.  A lookup uses the tables only when
	// the worker pointer still identifies in.Workers[w.ID], so stale copies
	// and re-allocated backing arrays are never served memoized values.
	memoWorkers int
	nC          int
	accHalf     []float64 // accHalf[w*nC+c] = Accuracy[c] - 0.5
	iTerm       []float64 // iTerm[w*nC+c] = (1-Beta)·Interest[c]
}

// NewModel binds params to an instance.  It returns an error for invalid
// params or a nil instance.
func NewModel(in *market.Instance, p Params) (*Model, error) {
	if in == nil {
		return nil, fmt.Errorf("benefit: nil instance")
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	m := &Model{in: in, p: p, nC: in.NumCategories}
	m.memoize()
	return m, nil
}

// memoize fills the per-(worker, category) tables.  Workers with malformed
// profile lengths disable memoization entirely rather than risk an
// out-of-range read; NewModel does not validate the instance, so this must
// tolerate anything.
func (m *Model) memoize() {
	nW := len(m.in.Workers)
	if m.nC <= 0 || nW == 0 {
		return
	}
	for i := range m.in.Workers {
		w := &m.in.Workers[i]
		if len(w.Accuracy) != m.nC || len(w.Interest) != m.nC {
			return
		}
	}
	m.accHalf = make([]float64, nW*m.nC)
	m.iTerm = make([]float64, nW*m.nC)
	for i := range m.in.Workers {
		w := &m.in.Workers[i]
		base := i * m.nC
		for c := 0; c < m.nC; c++ {
			m.accHalf[base+c] = w.Accuracy[c] - 0.5
			m.iTerm[base+c] = (1 - m.p.Beta) * w.Interest[c]
		}
	}
	m.memoWorkers = nW
}

// memoBase returns the memo-table base index for w, or -1 when w is not
// (or no longer) the instance-resident worker the tables were built from.
func (m *Model) memoBase(w *market.Worker) int {
	if id := w.ID; uint(id) < uint(m.memoWorkers) && w == &m.in.Workers[id] {
		return id * m.nC
	}
	return -1
}

// Params returns the model's parameters.
func (m *Model) Params() Params { return m.p }

// Instance returns the underlying market instance.
func (m *Model) Instance() *market.Instance { return m.in }

// EffectiveAccuracy is the probability worker w answers task t correctly:
// base accuracy in t's category discounted by task difficulty towards the
// coin-flip floor 0.5.  Always in [0.5, 1).
func (m *Model) EffectiveAccuracy(w *market.Worker, t *market.Task) float64 {
	return 0.5 + (w.Accuracy[t.Category]-0.5)*(1-t.Difficulty)
}

// Quality is the requester-side benefit of assigning w to t, the effective
// accuracy rescaled from [0.5, 1) to [0, 1).
func (m *Model) Quality(w *market.Worker, t *market.Task) float64 {
	if base := m.memoBase(w); base >= 0 {
		// Same expression as the fallback with Accuracy[c]-0.5 cached, so
		// both paths produce bit-identical values.
		return 2 * (0.5 + m.accHalf[base+t.Category]*(1-t.Difficulty) - 0.5)
	}
	return 2 * (m.EffectiveAccuracy(w, t) - 0.5)
}

// WorkerUtility is the worker-side benefit of assigning w to t:
// β · payment-surplus + (1−β) · interest, all in [0, 1].
// Payment surplus is (p_t − r_w)/p_max clamped to [0, 1]: a task below the
// worker's reservation wage yields zero monetary utility (but can still
// carry interest value — hobby work exists).
func (m *Model) WorkerUtility(w *market.Worker, t *market.Task) float64 {
	pay := 0.0
	if m.in.MaxPayment > 0 {
		pay = (t.Payment - w.ReservationWage) / m.in.MaxPayment
		if pay < 0 {
			pay = 0
		} else if pay > 1 {
			pay = 1
		}
	}
	if base := m.memoBase(w); base >= 0 {
		return m.p.Beta*pay + m.iTerm[base+t.Category]
	}
	return m.p.Beta*pay + (1-m.p.Beta)*w.Interest[t.Category]
}

// Combine merges a requester-side q and worker-side b into the mutual
// benefit according to the model's combiner.  Both inputs must be in [0,1];
// the output then is too.
func (m *Model) Combine(q, b float64) float64 {
	switch m.p.Combiner {
	case WeightedSum:
		return m.p.Lambda*q + (1-m.p.Lambda)*b
	case NashProduct:
		return math.Sqrt(q * b)
	case Egalitarian:
		if q < b {
			return q
		}
		return b
	default:
		panic("benefit: unreachable combiner")
	}
}

// Mutual is the combined benefit of the pair (w, t).
func (m *Model) Mutual(w *market.Worker, t *market.Task) float64 {
	return m.Combine(m.Quality(w, t), m.WorkerUtility(w, t))
}
