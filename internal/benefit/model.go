// Package benefit implements the paper's central modelling contribution:
// per-pair benefit functions for both sides of the bipartite labor market
// and the combiners that merge them into a single *mutual* benefit.
//
// Prior task-assignment work optimises the requester side alone (expected
// answer quality); the paper's abstract argues a good assignment must also
// "boost the workers' willingness to participate".  This package therefore
// exposes three per-pair quantities —
//
//	Quality(w, t)       requester-side benefit in [0, 1]
//	WorkerUtility(w, t) worker-side benefit in [0, 1]
//	Mutual(w, t)        combined benefit in [0, 1]
//
// — and three combiners for the last (weighted sum, Nash product,
// egalitarian min), selected through Params.
package benefit

import (
	"fmt"
	"math"

	"repro/internal/market"
)

// Combiner selects how the two sides' benefits merge into one value.
type Combiner int

const (
	// WeightedSum is λ·q + (1−λ)·b — the paper family's default, linear in
	// the trade-off knob λ.
	WeightedSum Combiner = iota
	// NashProduct is sqrt(q·b) — the geometric mean, echoing the Nash
	// bargaining solution: a pair that is worthless to either side is
	// worthless overall.
	NashProduct
	// Egalitarian is min(q, b) — the Rawlsian combiner; maximising it favors
	// pairs that are decent for *both* sides.
	Egalitarian
)

// String names the combiner for reports.
func (c Combiner) String() string {
	switch c {
	case WeightedSum:
		return "weighted-sum"
	case NashProduct:
		return "nash-product"
	case Egalitarian:
		return "egalitarian"
	default:
		return fmt.Sprintf("combiner(%d)", int(c))
	}
}

// Params are the benefit-model knobs.
type Params struct {
	// Lambda in [0,1] weights the requester side in WeightedSum; 1 recovers
	// classical quality-only assignment, 0 a pure worker market.
	Lambda float64
	// Beta in [0,1] weights money vs. interest inside the worker utility.
	Beta float64
	// Combiner selects the mutual-benefit combiner.
	Combiner Combiner
}

// DefaultParams returns the balanced defaults used throughout the
// evaluation: λ = β = 0.5 with the weighted-sum combiner.
func DefaultParams() Params {
	return Params{Lambda: 0.5, Beta: 0.5, Combiner: WeightedSum}
}

// Validate rejects out-of-range parameters.
func (p Params) Validate() error {
	if p.Lambda < 0 || p.Lambda > 1 {
		return fmt.Errorf("benefit: Lambda %v outside [0,1]", p.Lambda)
	}
	if p.Beta < 0 || p.Beta > 1 {
		return fmt.Errorf("benefit: Beta %v outside [0,1]", p.Beta)
	}
	if p.Combiner < WeightedSum || p.Combiner > Egalitarian {
		return fmt.Errorf("benefit: unknown combiner %d", int(p.Combiner))
	}
	return nil
}

// Model evaluates benefits over one market instance.
type Model struct {
	in *market.Instance
	p  Params
}

// NewModel binds params to an instance.  It returns an error for invalid
// params or a nil instance.
func NewModel(in *market.Instance, p Params) (*Model, error) {
	if in == nil {
		return nil, fmt.Errorf("benefit: nil instance")
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &Model{in: in, p: p}, nil
}

// Params returns the model's parameters.
func (m *Model) Params() Params { return m.p }

// Instance returns the underlying market instance.
func (m *Model) Instance() *market.Instance { return m.in }

// EffectiveAccuracy is the probability worker w answers task t correctly:
// base accuracy in t's category discounted by task difficulty towards the
// coin-flip floor 0.5.  Always in [0.5, 1).
func (m *Model) EffectiveAccuracy(w *market.Worker, t *market.Task) float64 {
	return 0.5 + (w.Accuracy[t.Category]-0.5)*(1-t.Difficulty)
}

// Quality is the requester-side benefit of assigning w to t, the effective
// accuracy rescaled from [0.5, 1) to [0, 1).
func (m *Model) Quality(w *market.Worker, t *market.Task) float64 {
	return 2 * (m.EffectiveAccuracy(w, t) - 0.5)
}

// WorkerUtility is the worker-side benefit of assigning w to t:
// β · payment-surplus + (1−β) · interest, all in [0, 1].
// Payment surplus is (p_t − r_w)/p_max clamped to [0, 1]: a task below the
// worker's reservation wage yields zero monetary utility (but can still
// carry interest value — hobby work exists).
func (m *Model) WorkerUtility(w *market.Worker, t *market.Task) float64 {
	pay := 0.0
	if m.in.MaxPayment > 0 {
		pay = (t.Payment - w.ReservationWage) / m.in.MaxPayment
		if pay < 0 {
			pay = 0
		} else if pay > 1 {
			pay = 1
		}
	}
	return m.p.Beta*pay + (1-m.p.Beta)*w.Interest[t.Category]
}

// Combine merges a requester-side q and worker-side b into the mutual
// benefit according to the model's combiner.  Both inputs must be in [0,1];
// the output then is too.
func (m *Model) Combine(q, b float64) float64 {
	switch m.p.Combiner {
	case WeightedSum:
		return m.p.Lambda*q + (1-m.p.Lambda)*b
	case NashProduct:
		return math.Sqrt(q * b)
	case Egalitarian:
		if q < b {
			return q
		}
		return b
	default:
		panic("benefit: unreachable combiner")
	}
}

// Mutual is the combined benefit of the pair (w, t).
func (m *Model) Mutual(w *market.Worker, t *market.Task) float64 {
	return m.Combine(m.Quality(w, t), m.WorkerUtility(w, t))
}
