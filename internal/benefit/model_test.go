package benefit

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/market"
	"repro/internal/stats"
)

func testInstance() *market.Instance {
	return market.MustGenerate(market.Config{NumWorkers: 20, NumTasks: 20}, 7)
}

func mustModel(t *testing.T, in *market.Instance, p Params) *Model {
	t.Helper()
	m, err := NewModel(in, p)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNewModelValidation(t *testing.T) {
	in := testInstance()
	bad := []Params{
		{Lambda: -0.1, Beta: 0.5},
		{Lambda: 1.1, Beta: 0.5},
		{Lambda: 0.5, Beta: -0.1},
		{Lambda: 0.5, Beta: 2},
		{Lambda: 0.5, Beta: 0.5, Combiner: Combiner(99)},
	}
	for i, p := range bad {
		if _, err := NewModel(in, p); err == nil {
			t.Errorf("params %d accepted: %+v", i, p)
		}
	}
	if _, err := NewModel(nil, DefaultParams()); err == nil {
		t.Error("nil instance accepted")
	}
	if _, err := NewModel(in, DefaultParams()); err != nil {
		t.Errorf("default params rejected: %v", err)
	}
}

func TestEffectiveAccuracyDifficultyDiscount(t *testing.T) {
	in := testInstance()
	m := mustModel(t, in, DefaultParams())
	w := &in.Workers[0]
	easy := market.Task{Category: w.Specialties[0], Difficulty: 0}
	hard := market.Task{Category: w.Specialties[0], Difficulty: 1}
	if got := m.EffectiveAccuracy(w, &easy); got != w.Accuracy[easy.Category] {
		t.Fatalf("zero difficulty should not discount: %v vs %v", got, w.Accuracy[easy.Category])
	}
	if got := m.EffectiveAccuracy(w, &hard); got != 0.5 {
		t.Fatalf("difficulty 1 should reduce to coin flip, got %v", got)
	}
}

func TestQualityRange(t *testing.T) {
	in := testInstance()
	m := mustModel(t, in, DefaultParams())
	for i := range in.Workers {
		for j := range in.Tasks {
			q := m.Quality(&in.Workers[i], &in.Tasks[j])
			if q < 0 || q >= 1 {
				t.Fatalf("quality %v outside [0,1)", q)
			}
		}
	}
}

func TestWorkerUtilityRange(t *testing.T) {
	in := testInstance()
	for _, beta := range []float64{0, 0.5, 1} {
		m := mustModel(t, in, Params{Lambda: 0.5, Beta: beta})
		for i := range in.Workers {
			for j := range in.Tasks {
				b := m.WorkerUtility(&in.Workers[i], &in.Tasks[j])
				if b < 0 || b > 1 {
					t.Fatalf("utility %v outside [0,1]", b)
				}
			}
		}
	}
}

func TestWorkerUtilityReservationWage(t *testing.T) {
	in := testInstance()
	m := mustModel(t, in, Params{Lambda: 0.5, Beta: 1}) // money only
	w := in.Workers[0]
	w.ReservationWage = 1000 // above every payment
	for j := range in.Tasks {
		if b := m.WorkerUtility(&w, &in.Tasks[j]); b != 0 {
			t.Fatalf("below-reservation task should yield 0 money utility, got %v", b)
		}
	}
}

func TestWorkerUtilityInterestOnly(t *testing.T) {
	in := testInstance()
	m := mustModel(t, in, Params{Lambda: 0.5, Beta: 0}) // interest only
	w := &in.Workers[0]
	task := &in.Tasks[0]
	if got := m.WorkerUtility(w, task); got != w.Interest[task.Category] {
		t.Fatalf("beta=0 utility %v != interest %v", got, w.Interest[task.Category])
	}
}

func TestCombinersKnownValues(t *testing.T) {
	in := testInstance()
	cases := []struct {
		c    Combiner
		q, b float64
		want float64
	}{
		{WeightedSum, 0.8, 0.4, 0.6},
		{WeightedSum, 0, 1, 0.5},
		{NashProduct, 0.25, 1, 0.5},
		{NashProduct, 0, 0.9, 0},
		{Egalitarian, 0.3, 0.7, 0.3},
		{Egalitarian, 0.9, 0.2, 0.2},
	}
	for _, tc := range cases {
		m := mustModel(t, in, Params{Lambda: 0.5, Beta: 0.5, Combiner: tc.c})
		if got := m.Combine(tc.q, tc.b); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("%v.Combine(%v,%v) = %v, want %v", tc.c, tc.q, tc.b, got, tc.want)
		}
	}
}

func TestLambdaExtremes(t *testing.T) {
	in := testInstance()
	mQ := mustModel(t, in, Params{Lambda: 1, Beta: 0.5})
	mB := mustModel(t, in, Params{Lambda: 0, Beta: 0.5})
	w := &in.Workers[0]
	task := &in.Tasks[0]
	if mQ.Mutual(w, task) != mQ.Quality(w, task) {
		t.Fatal("lambda=1 mutual should equal quality")
	}
	if mB.Mutual(w, task) != mB.WorkerUtility(w, task) {
		t.Fatal("lambda=0 mutual should equal worker utility")
	}
}

func TestCombinerString(t *testing.T) {
	if WeightedSum.String() != "weighted-sum" || NashProduct.String() != "nash-product" ||
		Egalitarian.String() != "egalitarian" {
		t.Fatal("combiner names wrong")
	}
	if Combiner(42).String() == "" {
		t.Fatal("unknown combiner should still render")
	}
}

// Property: all combiners are monotone in both arguments and bounded by the
// DESIGN.md ordering Egalitarian ≤ NashProduct and Egalitarian ≤ WeightedSum.
func TestQuickCombinerProperties(t *testing.T) {
	in := testInstance()
	ws := mustModel(t, in, Params{Lambda: 0.5, Beta: 0.5, Combiner: WeightedSum})
	np := mustModel(t, in, Params{Lambda: 0.5, Beta: 0.5, Combiner: NashProduct})
	eg := mustModel(t, in, Params{Lambda: 0.5, Beta: 0.5, Combiner: Egalitarian})
	f := func(q1000, b1000, dq1000 uint16) bool {
		q := float64(q1000%1001) / 1000
		b := float64(b1000%1001) / 1000
		dq := float64(dq1000%1001) / 1000 * (1 - q)
		for _, m := range []*Model{ws, np, eg} {
			v := m.Combine(q, b)
			if v < -1e-12 || v > 1+1e-12 {
				return false
			}
			// Monotone in q.
			if m.Combine(q+dq, b)+1e-12 < v {
				return false
			}
		}
		e, n := eg.Combine(q, b), np.Combine(q, b)
		w := ws.Combine(q, b)
		return e <= n+1e-12 && e <= w+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Mutual stays in [0,1] over random instances and params.
func TestQuickMutualBounded(t *testing.T) {
	f := func(seed uint64, l1000, b1000 uint16, comb uint8) bool {
		in, err := market.Generate(market.Config{NumWorkers: 5, NumTasks: 5}, seed)
		if err != nil {
			return false
		}
		p := Params{
			Lambda:   float64(l1000%1001) / 1000,
			Beta:     float64(b1000%1001) / 1000,
			Combiner: Combiner(comb % 3),
		}
		m, err := NewModel(in, p)
		if err != nil {
			return false
		}
		r := stats.NewRNG(seed)
		for trial := 0; trial < 10; trial++ {
			w := &in.Workers[r.Intn(len(in.Workers))]
			task := &in.Tasks[r.Intn(len(in.Tasks))]
			mu := m.Mutual(w, task)
			if mu < 0 || mu > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
