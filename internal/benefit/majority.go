package benefit

// MajorityCorrectProb returns the probability that a majority vote over
// independent binary answers with the given per-worker correctness
// probabilities yields the correct label.  Exact ties (possible with an even
// number of voters) are broken uniformly at random, contributing half their
// probability mass.
//
// This is the per-task quality oracle of the MBA-S (diminishing-returns)
// objective: as workers are added to a task, each additional vote improves
// the majority outcome by less and less, which is what makes the set
// function monotone with diminishing returns and the overall problem
// NP-hard (DESIGN.md §1.1).
//
// The computation is the standard Poisson-binomial dynamic program over the
// number of correct answers: O(n²) time, O(n) space.  An empty set returns
// 0.5 — with no answers, the requester is left guessing.
func MajorityCorrectProb(accs []float64) float64 {
	n := len(accs)
	if n == 0 {
		return 0.5
	}
	// dist[k] = P(exactly k of the answers seen so far are correct).
	dist := make([]float64, n+1)
	dist[0] = 1
	for i, a := range accs {
		// Walk k downward so each worker is counted once.
		for k := i + 1; k >= 1; k-- {
			dist[k] = dist[k]*(1-a) + dist[k-1]*a
		}
		dist[0] *= 1 - a
	}
	p := 0.0
	for k := 0; k <= n; k++ {
		switch {
		case 2*k > n:
			p += dist[k]
		case 2*k == n:
			p += 0.5 * dist[k]
		}
	}
	return p
}

// MajorityGain returns the increase in majority-correctness probability from
// adding a worker with accuracy a to a task already holding accs.  It never
// returns a negative value: mathematically the gain can be slightly negative
// (adding a weak voter can hurt an odd-sized panel), and the submodular
// greedy must treat such additions as worthless rather than winning moves,
// so the gain is clamped at zero.
func MajorityGain(accs []float64, a float64) float64 {
	before := MajorityCorrectProb(accs)
	after := MajorityCorrectProb(append(append(make([]float64, 0, len(accs)+1), accs...), a))
	g := after - before
	if g < 0 {
		return 0
	}
	return g
}
