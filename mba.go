// Package mba (mutual-benefit assignment) is the public API of this
// reproduction of "Mutual benefit aware task assignment in a bipartite
// labor market" (Liu Zheng and Lei Chen, ICDE 2016).
//
// The library models a crowdsourcing/freelancing platform as a bipartite
// market of workers and tasks, scores every eligible worker-task pair for
// *both* sides (requester-side expected quality, worker-side utility), and
// assigns tasks to maximise the combined mutual benefit under per-worker
// capacity and per-task replication constraints.
//
// A minimal session:
//
//	in := mba.FreelanceTrace(500, 300, 42)           // synthetic platform trace
//	res, err := mba.Assign(in, mba.DefaultParams(), "greedy", 42)
//	if err != nil { ... }
//	fmt.Println(res.Metrics)                          // totals, fairness, coverage
//	for _, pr := range res.Pairs { ... }              // the assignment itself
//
// Beyond one-shot assignment the package exposes the answer-quality loop
// (SimulateAnswers + aggregation already folded into EndToEnd) and the
// multi-round participation simulation (SimulateRounds) that demonstrates
// the paper's "willingness to participate" claim.  The full experiment
// suite behind DESIGN.md/EXPERIMENTS.md is runnable via cmd/mbabench.
package mba

import (
	"fmt"

	"repro/internal/benefit"
	"repro/internal/core"
	"repro/internal/dynamics"
	"repro/internal/market"
	"repro/internal/quality"
	"repro/internal/stats"
)

// Re-exported domain types.  The aliases make the internal packages'
// documented types part of the public surface without duplication.
type (
	// Instance is a market snapshot: workers, tasks, categories.
	Instance = market.Instance
	// Worker is one supply-side participant.
	Worker = market.Worker
	// Task is one unit of posted work.
	Task = market.Task
	// MarketConfig parameterises the synthetic market generators.
	MarketConfig = market.Config
	// Params are the benefit-model knobs (lambda, beta, combiner).
	Params = benefit.Params
	// Combiner selects how the two sides' benefits merge.
	Combiner = benefit.Combiner
	// Metrics scores an assignment from every reported angle.
	Metrics = core.Metrics
	// Solver is the assignment-algorithm interface.
	Solver = core.Solver
	// DynamicsConfig parameterises multi-round participation simulation.
	DynamicsConfig = dynamics.Config
	// DynamicsReport is the outcome of a multi-round simulation.
	DynamicsReport = dynamics.Report
)

// Combiner values.
const (
	WeightedSum = benefit.WeightedSum
	NashProduct = benefit.NashProduct
	Egalitarian = benefit.Egalitarian
)

// DefaultParams returns the balanced benefit parameters (λ = β = 0.5,
// weighted-sum combiner).
func DefaultParams() Params { return benefit.DefaultParams() }

// Generate builds a synthetic market instance; see MarketConfig for knobs.
func Generate(cfg MarketConfig, seed uint64) (*Instance, error) {
	return market.Generate(cfg, seed)
}

// FreelanceTrace generates the freelance-platform-shaped workload
// (Zipf-skewed categories, log-normal prices, specialised workers).
func FreelanceTrace(workers, tasks int, seed uint64) *Instance {
	return market.FreelanceTrace(workers, tasks, seed)
}

// MicrotaskTrace generates the microtask-platform-shaped workload (cheap
// tasks, high replication, broad shallow skills).
func MicrotaskTrace(workers, tasks int, seed uint64) *Instance {
	return market.MicrotaskTrace(workers, tasks, seed)
}

// Algorithms lists the registered assignment algorithm names accepted by
// Assign (e.g. "exact", "greedy", "local-search", "quality-only",
// "online-twophase").
func Algorithms() []string { return core.SolverNames() }

// NewSolver resolves an algorithm name to a Solver for repeated use.
func NewSolver(name string) (Solver, error) { return core.ByName(name) }

// Pair is one assigned worker-task pair with its benefit decomposition.
type Pair struct {
	Worker  int     // worker index in the instance
	Task    int     // task index in the instance
	Quality float64 // requester-side benefit of the pair
	Utility float64 // worker-side benefit of the pair
	Mutual  float64 // combined benefit of the pair
}

// Result is an assignment with its evaluation.
type Result struct {
	Pairs   []Pair
	Metrics Metrics
}

// Assign runs the named algorithm on the instance under params.  The seed
// controls randomised and online algorithms (arrival orders, tie-breaks);
// deterministic algorithms ignore it.  The returned assignment is always
// validated against the capacity and replication constraints.
func Assign(in *Instance, params Params, algorithm string, seed uint64) (*Result, error) {
	solver, err := core.ByName(algorithm)
	if err != nil {
		return nil, err
	}
	return AssignWith(in, params, solver, seed)
}

// AssignWith is Assign with an explicit Solver, for custom or pre-built
// algorithm values.
func AssignWith(in *Instance, params Params, solver Solver, seed uint64) (*Result, error) {
	p, err := core.NewProblem(in, params)
	if err != nil {
		return nil, err
	}
	sel, m, err := core.Run(p, solver, stats.NewRNG(seed))
	if err != nil {
		return nil, err
	}
	res := &Result{Metrics: m, Pairs: make([]Pair, len(sel))}
	for i, ei := range sel {
		e := &p.Edges[ei]
		res.Pairs[i] = Pair{Worker: e.W, Task: e.T, Quality: e.Q, Utility: e.B, Mutual: e.M}
	}
	return res, nil
}

// EndToEndResult reports aggregated answer accuracy for one assignment.
type EndToEndResult struct {
	// MajorityAccuracy and WeightedAccuracy are the fractions of answered
	// tasks labelled correctly after majority / oracle-weighted voting.
	MajorityAccuracy float64
	WeightedAccuracy float64
	// EMAccuracy is the same for Dawid–Skene-style EM aggregation.
	EMAccuracy float64
	// AnsweredTasks counts tasks that received at least one answer.
	AnsweredTasks int
}

// EndToEnd closes the crowdsourcing loop for an assignment produced by
// Assign/AssignWith on the same instance and params: it simulates every
// worker's answer and aggregates them three ways, returning the end-to-end
// accuracy a requester would actually observe.
func EndToEnd(in *Instance, params Params, res *Result, seed uint64) (*EndToEndResult, error) {
	model, err := benefit.NewModel(in, params)
	if err != nil {
		return nil, err
	}
	votes := make([]quality.Vote, len(res.Pairs))
	for i, pr := range res.Pairs {
		if pr.Worker < 0 || pr.Worker >= in.NumWorkers() || pr.Task < 0 || pr.Task >= in.NumTasks() {
			return nil, fmt.Errorf("mba: pair %d references unknown worker/task", i)
		}
		votes[i] = quality.Vote{
			Worker: pr.Worker,
			Task:   pr.Task,
			Acc:    model.EffectiveAccuracy(&in.Workers[pr.Worker], &in.Tasks[pr.Task]),
		}
	}
	r := stats.NewRNG(seed)
	as, err := quality.Simulate(in.NumWorkers(), in.NumTasks(), votes, r)
	if err != nil {
		return nil, err
	}
	out := &EndToEndResult{
		MajorityAccuracy: quality.Accuracy(as, quality.MajorityVote(as, r), true),
		WeightedAccuracy: quality.Accuracy(as, quality.WeightedVote(as, r), true),
	}
	emPred, _ := quality.EM(as, 0, r)
	out.EMAccuracy = quality.Accuracy(as, emPred, true)
	for t := range as.Answers {
		if len(as.Answers[t]) > 0 {
			out.AnsweredTasks++
		}
	}
	return out, nil
}

// SimulateRounds runs the multi-round participation simulation: workers
// persist, tasks churn, and dissatisfied workers quit.  See DynamicsConfig
// for the retention knobs.
func SimulateRounds(cfg DynamicsConfig, seed uint64) (*DynamicsReport, error) {
	return dynamics.Simulate(cfg, seed)
}
