package mba

import (
	"testing"

	"repro/internal/core"
	"repro/internal/market"
)

func TestAssignAllAlgorithms(t *testing.T) {
	in := FreelanceTrace(50, 40, 1)
	for _, name := range Algorithms() {
		if name == "auction" {
			continue // needs unit capacities, covered below
		}
		res, err := Assign(in, DefaultParams(), name, 1)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Metrics.Algorithm != name {
			t.Fatalf("%s: metrics labelled %q", name, res.Metrics.Algorithm)
		}
		for _, pr := range res.Pairs {
			if pr.Mutual < 0 || pr.Mutual > 1 {
				t.Fatalf("%s: pair benefit %v out of range", name, pr.Mutual)
			}
		}
	}
}

func TestAssignAuctionOnMatchingInstance(t *testing.T) {
	cfg := market.UniformConfig(30, 30)
	cfg.MinCapacity, cfg.MaxCapacity = 1, 1
	cfg.MinReplication, cfg.MaxReplication = 1, 1
	in, err := Generate(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Assign(in, DefaultParams(), "auction", 1)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := Assign(in, DefaultParams(), "exact", 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.TotalMutual < exact.Metrics.TotalMutual-0.01 {
		t.Fatalf("auction %v far below exact %v", res.Metrics.TotalMutual, exact.Metrics.TotalMutual)
	}
}

func TestAssignUnknownAlgorithm(t *testing.T) {
	in := FreelanceTrace(10, 10, 1)
	if _, err := Assign(in, DefaultParams(), "nope", 1); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
}

func TestAssignBadParams(t *testing.T) {
	in := FreelanceTrace(10, 10, 1)
	if _, err := Assign(in, Params{Lambda: 7}, "greedy", 1); err == nil {
		t.Fatal("bad params accepted")
	}
}

func TestAssignDeterministicForSeed(t *testing.T) {
	in := MicrotaskTrace(40, 30, 3)
	a, err := Assign(in, DefaultParams(), "online-greedy", 5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Assign(in, DefaultParams(), "online-greedy", 5)
	if err != nil {
		t.Fatal(err)
	}
	if a.Metrics.TotalMutual != b.Metrics.TotalMutual || len(a.Pairs) != len(b.Pairs) {
		t.Fatal("same-seed assignment differs")
	}
}

func TestAssignWithCustomSolver(t *testing.T) {
	in := FreelanceTrace(20, 20, 4)
	res, err := AssignWith(in, DefaultParams(), core.LocalSearch{Kind: core.MutualWeight}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.Algorithm != "local-search" {
		t.Fatalf("got %q", res.Metrics.Algorithm)
	}
}

func TestEndToEndAccuracy(t *testing.T) {
	in := MicrotaskTrace(80, 40, 5)
	res, err := Assign(in, DefaultParams(), "greedy", 5)
	if err != nil {
		t.Fatal(err)
	}
	e2e, err := EndToEnd(in, DefaultParams(), res, 5)
	if err != nil {
		t.Fatal(err)
	}
	if e2e.AnsweredTasks == 0 {
		t.Fatal("no tasks answered")
	}
	for _, acc := range []float64{e2e.MajorityAccuracy, e2e.WeightedAccuracy, e2e.EMAccuracy} {
		if acc < 0.5 || acc > 1 {
			t.Fatalf("implausible accuracy %v", acc)
		}
	}
}

func TestEndToEndRejectsForeignPairs(t *testing.T) {
	in := MicrotaskTrace(10, 10, 6)
	res := &Result{Pairs: []Pair{{Worker: 99, Task: 0}}}
	if _, err := EndToEnd(in, DefaultParams(), res, 1); err == nil {
		t.Fatal("foreign pair accepted")
	}
}

func TestSimulateRoundsFacade(t *testing.T) {
	solver, err := NewSolver("greedy")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := SimulateRounds(DynamicsConfig{
		Rounds: 5,
		Market: MarketConfig{NumWorkers: 40, NumTasks: 30},
		Params: DefaultParams(),
		Solver: solver,
	}, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rounds) != 5 {
		t.Fatalf("rounds = %d", len(rep.Rounds))
	}
}

func TestGenerateFacadeValidates(t *testing.T) {
	if _, err := Generate(MarketConfig{MinCapacity: 5, MaxCapacity: 1}, 1); err == nil {
		t.Fatal("bad config accepted")
	}
}

func TestMutualBeatsQualityOnlyOnTotalBenefit(t *testing.T) {
	// The paper's headline claim through the public API.
	var mutual, qualityOnly float64
	for seed := uint64(1); seed <= 5; seed++ {
		in := FreelanceTrace(60, 50, seed)
		rm, err := Assign(in, DefaultParams(), "exact", seed)
		if err != nil {
			t.Fatal(err)
		}
		rq, err := Assign(in, DefaultParams(), "quality-only", seed)
		if err != nil {
			t.Fatal(err)
		}
		mutual += rm.Metrics.TotalMutual
		qualityOnly += rq.Metrics.TotalMutual
	}
	if mutual <= qualityOnly {
		t.Fatalf("mutual %v did not beat quality-only %v", mutual, qualityOnly)
	}
}
