package mba

import (
	"testing"
)

func TestAssignWithSLA(t *testing.T) {
	in := FreelanceTrace(60, 50, 1)
	base, err := Assign(in, DefaultParams(), "greedy", 1)
	if err != nil {
		t.Fatal(err)
	}
	sla, err := AssignWithSLA(in, DefaultParams(), "greedy", 0.6, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, pr := range sla.Pairs {
		if pr.Quality < 0.6 {
			t.Fatalf("pair below SLA: %+v", pr)
		}
	}
	if len(sla.Pairs) > len(base.Pairs) {
		t.Fatal("SLA increased coverage")
	}
	if _, err := AssignWithSLA(in, DefaultParams(), "greedy", 2, 1); err == nil {
		t.Fatal("bad SLA accepted")
	}
	if _, err := AssignWithSLA(in, DefaultParams(), "nope", 0.5, 1); err == nil {
		t.Fatal("bad algorithm accepted")
	}
}

func TestStabilityFacade(t *testing.T) {
	in := FreelanceTrace(50, 40, 2)
	stable, err := Assign(in, DefaultParams(), "stable-matching", 2)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Stability(in, DefaultParams(), stable)
	if err != nil {
		t.Fatal(err)
	}
	if rep.BlockingPairs != 0 {
		t.Fatalf("stable matching reported %d blocking pairs", rep.BlockingPairs)
	}
	if rep.EligiblePairs == 0 {
		t.Fatal("no eligible pairs reported")
	}
	exact, err := Assign(in, DefaultParams(), "exact", 2)
	if err != nil {
		t.Fatal(err)
	}
	repE, err := Stability(in, DefaultParams(), exact)
	if err != nil {
		t.Fatal(err)
	}
	if repE.BlockingPairs == 0 {
		t.Log("exact happened to be stable on this instance (rare but possible)")
	}
}

func TestStabilityRejectsForeignResult(t *testing.T) {
	in := FreelanceTrace(20, 20, 3)
	bogus := &Result{Pairs: []Pair{{Worker: 0, Task: 0}}}
	// (0,0) may or may not be eligible; build a surely-foreign pair.
	bogus.Pairs[0] = Pair{Worker: 19, Task: 19}
	if _, err := Stability(in, DefaultParams(), bogus); err == nil {
		// It could be eligible by luck; force an out-of-range pair instead.
		bogus.Pairs[0] = Pair{Worker: 999, Task: 0}
		if _, err := Stability(in, DefaultParams(), bogus); err == nil {
			t.Fatal("foreign pair accepted")
		}
	}
}

func TestByCategoryFacade(t *testing.T) {
	in := MicrotaskTrace(60, 40, 4)
	res, err := Assign(in, DefaultParams(), "greedy", 4)
	if err != nil {
		t.Fatal(err)
	}
	reps, err := ByCategory(in, DefaultParams(), res)
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) != in.NumCategories {
		t.Fatalf("reports = %d", len(reps))
	}
	filled := 0
	for _, r := range reps {
		filled += r.Filled
	}
	if filled != len(res.Pairs) {
		t.Fatalf("category fills %d != pairs %d", filled, len(res.Pairs))
	}
}

func TestRetentionCurveFacade(t *testing.T) {
	solver, _ := NewSolver("greedy")
	cfg := DynamicsConfig{
		Rounds: 5,
		Market: MarketConfig{NumWorkers: 40, NumTasks: 30},
		Params: DefaultParams(),
		Solver: solver,
	}
	curve, err := RetentionCurve(cfg, []float64{0.5, 2}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(curve) != 2 {
		t.Fatalf("curve = %v", curve)
	}
	if _, err := RecommendPaymentMultiplier(cfg, []float64{0.5, 2}, 0.05, 5); err != nil {
		t.Fatal(err)
	}
}

func TestClusteredMarketFacade(t *testing.T) {
	in := ClusteredMarket(50, 30, 0.2, 6)
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, err := Assign(in, DefaultParams(), "greedy", 6); err != nil {
		t.Fatal(err)
	}
}
