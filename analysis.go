package mba

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/market"
	"repro/internal/pricing"
	"repro/internal/stats"
)

// This file extends the façade with the analysis and operator tooling built
// on top of the core assignment loop: quality SLAs, stability analysis,
// per-category market health, and payment recommendation.

// AssignWithSLA is Assign with a per-pair quality floor: pairs whose
// requester-side quality falls below minQuality are excluded before the
// algorithm runs, trading coverage for a guaranteed competence bar.
func AssignWithSLA(in *Instance, params Params, algorithm string, minQuality float64, seed uint64) (*Result, error) {
	if minQuality < 0 || minQuality > 1 {
		return nil, fmt.Errorf("mba: minQuality %v outside [0,1]", minQuality)
	}
	solver, err := core.ByName(algorithm)
	if err != nil {
		return nil, err
	}
	p, err := core.NewProblem(in, params)
	if err != nil {
		return nil, err
	}
	fp := core.FilterProblem(p, core.MinQuality(minQuality))
	sel, m, err := core.Run(fp, solver, stats.NewRNG(seed))
	if err != nil {
		return nil, err
	}
	res := &Result{Metrics: m, Pairs: make([]Pair, len(sel))}
	for i, ei := range sel {
		e := &fp.Edges[ei]
		res.Pairs[i] = Pair{Worker: e.W, Task: e.T, Quality: e.Q, Utility: e.B, Mutual: e.M}
	}
	return res, nil
}

// StabilityReport quantifies how stable an assignment is in the matching-
// market sense.
type StabilityReport struct {
	// BlockingPairs counts worker-task pairs that would rather have each
	// other than what the assignment gave them.  Zero means stable.
	BlockingPairs int
	// EligiblePairs is the total number of eligible pairs, for context.
	EligiblePairs int
}

// Stability analyses res against the instance it was computed on.
func Stability(in *Instance, params Params, res *Result) (*StabilityReport, error) {
	p, sel, err := rebuildSelection(in, params, res)
	if err != nil {
		return nil, err
	}
	return &StabilityReport{
		BlockingPairs: core.BlockingPairs(p, sel),
		EligiblePairs: len(p.Edges),
	}, nil
}

// CategoryReport re-exports the per-category market-health breakdown.
type CategoryReport = core.CategoryReport

// ByCategory breaks res down per task category: demand, coverage, eligible
// supply and mean benefit — the operator's view of where the market clears.
func ByCategory(in *Instance, params Params, res *Result) ([]CategoryReport, error) {
	p, sel, err := rebuildSelection(in, params, res)
	if err != nil {
		return nil, err
	}
	return p.ByCategory(sel), nil
}

// rebuildSelection maps a Result's pairs back onto a Problem's edge indices.
func rebuildSelection(in *Instance, params Params, res *Result) (*core.Problem, []int, error) {
	p, err := core.NewProblem(in, params)
	if err != nil {
		return nil, nil, err
	}
	index := make(map[[2]int]int, len(p.Edges))
	for i := range p.Edges {
		index[[2]int{p.Edges[i].W, p.Edges[i].T}] = i
	}
	sel := make([]int, len(res.Pairs))
	for i, pr := range res.Pairs {
		ei, ok := index[[2]int{pr.Worker, pr.Task}]
		if !ok {
			return nil, nil, fmt.Errorf("mba: pair (%d,%d) is not an eligible edge of this instance", pr.Worker, pr.Task)
		}
		sel[i] = ei
	}
	if err := p.Feasible(sel); err != nil {
		return nil, nil, err
	}
	return p, sel, nil
}

// RetentionPoint re-exports the pricing probe type.
type RetentionPoint = pricing.RetentionPoint

// RetentionCurve simulates final workforce participation as a function of a
// uniform payment multiplier (reservation wages held fixed).  See
// internal/pricing for the modelling details.
func RetentionCurve(cfg DynamicsConfig, multipliers []float64, seed uint64) ([]RetentionPoint, error) {
	return pricing.RetentionCurve(cfg, multipliers, seed)
}

// RecommendPaymentMultiplier returns the smallest candidate multiplier
// whose simulated final participation reaches target.
func RecommendPaymentMultiplier(cfg DynamicsConfig, candidates []float64, target float64, seed uint64) (float64, error) {
	return pricing.RecommendMultiplier(cfg, candidates, target, seed)
}

// ClusteredMarket generates the two-tier expert/generalist workload (see
// market.ClusteredMarket).
func ClusteredMarket(workers, tasks int, expertFrac float64, seed uint64) *Instance {
	return market.ClusteredMarket(workers, tasks, expertFrac, seed)
}

// Incremental is the dynamic-market assigner: it keeps a greedy-maximal
// mutual-benefit assignment standing while workers join/leave and tasks
// are posted/closed, repairing locally per event instead of recomputing.
// See core.Incremental for the repair semantics and invariants.
type Incremental = core.Incremental

// NewIncremental creates an empty dynamic market over numCategories
// categories.  payScale pins the payment normalisation (use the platform's
// typical maximum payment); params configures the benefit model.
func NewIncremental(numCategories int, payScale float64, params Params) (*Incremental, error) {
	return core.NewIncremental(numCategories, payScale, params)
}
