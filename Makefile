# Pre-merge verification and perf tooling.  `make verify` is the documented
# gate: the tier-1 build+test, go vet, and the race detector over the
# concurrency-bearing packages (problem construction and the platform
# server).
GO ?= go

.PHONY: verify build test vet race bench benchjson

verify: build test vet race

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./internal/core/... ./internal/platform/...

# Construction + greedy hot-path micro-benchmarks (allocation counts
# included); compare against the committed BENCH_construction.json.
bench:
	$(GO) test -bench 'NewProblem|Greedy|Feasible' -benchmem -run '^$$'

# Regenerate the machine-readable benchmark-regression report.
benchjson:
	$(GO) run ./cmd/mbabench -benchjson BENCH_construction.json
