# Pre-merge verification and perf tooling.  `make verify` is the documented
# gate: the tier-1 build+test, go vet + gofmt, and the race detector over
# the concurrency-bearing packages (problem construction, the flow kernels
# and their workspace pool, and the platform server).
GO ?= go

.PHONY: verify build test vet race chaos crash bench benchjson bench-diff

verify: build test vet race

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...
	$(GO) vet -tags chaos ./...
	@unformatted=$$(gofmt -l .); if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; fi

race:
	$(GO) test -race ./internal/core/... ./internal/platform/... ./internal/bipartite/...

# Fault-injection suite: ≥120 serving rounds under injected journal
# faults, solver panics and concurrent churn, then recovery verification;
# plus the replication storms — the primary killed mid-stream (response
# cut at seeded offsets), taken away for whole poll windows, and its
# journal poisoned under it, with the follower required to converge to
# snapshot byte-identity every time — and the failover storms: the
# primary killed mid-traffic with the standby auto-promoting to a state
# byte-identical to the crash-free reference, the old primary revived
# and epoch-fenced (zero writes applied or journaled), and a follower
# stalled past segment retention recovering through snapshot resync.
# The overload storm (build tag `chaos`) adds a seeded open-loop
# LoadStorm at 4x the admission controller's write capacity: admitted
# requests must meet their deadline p99, shed requests must get 429 +
# jittered Retry-After with zero journal writes, the journal must replay
# byte-identical to the accepted-event log, healthz must recover
# overloaded->ok once the storm stops, and the failover standby must not
# promote (overload is not death).
# Deterministic under CHAOS_SEED (default 1); export a different value
# to rotate the fault pattern (CI runs seeds 1, 7 and 1337).
chaos:
	CHAOS_SEED=$${CHAOS_SEED:-1} $(GO) test -tags chaos -race -count=1 -v -run 'Chaos' ./internal/platform/...

# Crash-fidelity suite: a ≥100-round deterministic script re-run with a
# power cut injected at every checkpoint/segment crash point (torn
# snapshot, cut rename, torn append, mid-rotation cut, cut heal); after
# each crash the directory is recovered and the final state must be
# byte-identical to the crash-free reference.  Seeded like `make chaos`.
crash:
	CHAOS_SEED=$${CHAOS_SEED:-1} $(GO) test -race -count=1 -v -run 'TestCrash' ./internal/platform/...

# Construction + greedy hot-path micro-benchmarks (allocation counts
# included); compare against the committed BENCH_construction.json.
bench:
	$(GO) test -bench 'NewProblem|Greedy|Feasible' -benchmem -run '^$$'

# Regenerate the machine-readable benchmark-regression baselines:
# construction/solver line-up, the steady-state solve + platform round
# suites (workspace and arena reuse), and the exact matching engines
# (cold serial reference vs workspace-reused flow kernels).
benchjson:
	$(GO) run ./cmd/mbabench -benchjson BENCH_construction.json -suites construction
	$(GO) run ./cmd/mbabench -benchjson BENCH_solve.json -suites solve,round
	$(GO) run ./cmd/mbabench -benchjson BENCH_matching.json -suites matching
	$(GO) run ./cmd/mbabench -benchjson BENCH_incremental.json -suites incremental
	$(GO) run ./cmd/mbabench -benchjson BENCH_sharded.json -suites sharded-round
	$(GO) run ./cmd/mbabench -benchjson BENCH_ingest.json -suites ingest
	$(GO) run ./cmd/mbabench -benchjson BENCH_overload.json -suites overload

# Re-run the checked-in baselines' suites and fail on any entry that got
# >25% slower (or meaningfully more allocation-hungry).  Run on an idle
# machine: the gate compares wall-clock numbers.
bench-diff:
	$(GO) run ./cmd/mbabench -benchdiff BENCH_construction.json
	$(GO) run ./cmd/mbabench -benchdiff BENCH_solve.json
	$(GO) run ./cmd/mbabench -benchdiff BENCH_matching.json
	$(GO) run ./cmd/mbabench -benchdiff BENCH_incremental.json
	$(GO) run ./cmd/mbabench -benchdiff BENCH_sharded.json
	$(GO) run ./cmd/mbabench -benchdiff BENCH_ingest.json
	$(GO) run ./cmd/mbabench -benchdiff BENCH_overload.json
