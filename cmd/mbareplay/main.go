// Command mbareplay replays an event journal (as written by mbaserve or
// generated with -synthesize) into a market state, prints the resulting
// statistics and optionally runs one assignment round over it.  Both
// journal encodings — JSONL and the framed binary format (.mbaj) — are
// auto-detected per file, so mixed directories replay transparently.
//
// Replay is crash-tolerant by default: a torn tail (the signature of a
// crash mid-append) is dropped and reported rather than failing the whole
// replay; -strict restores the fail-on-any-defect behaviour.  Pointing
// -journal at a *directory* recovers a checkpointed data dir as mbaserve
// would: newest valid snapshot plus the segment tail.
//
// Usage:
//
//	mbareplay -journal market.jsonl -categories 30 -assign greedy
//	mbareplay -journal ./data -categories 30        # snapshot+segments dir
//	mbareplay -synthesize 500 -categories 30 > trace.jsonl
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/benefit"
	"repro/internal/core"
	"repro/internal/market"
	"repro/internal/platform"
)

func main() {
	var (
		journal    = flag.String("journal", "", "event journal to replay, JSONL or binary (a file, or a snapshot+segments directory)")
		categories = flag.Int("categories", 30, "category universe size")
		assign     = flag.String("assign", "", "run one assignment round with this algorithm after replay")
		synthesize = flag.Int("synthesize", 0, "instead of replaying, emit a synthetic trace of N events to stdout")
		seed       = flag.Uint64("seed", 42, "seed for -synthesize and randomised solvers")
		strict     = flag.Bool("strict", false, "fail on any journal defect instead of recovering the valid prefix")
	)
	flag.Parse()

	if *synthesize > 0 {
		events, err := platform.SyntheticTrace(platform.TraceConfig{
			Market:     market.FreelanceTraceConfig(0, 0),
			Events:     *synthesize,
			RoundEvery: 50,
		}, *seed)
		if err != nil {
			log.Fatalf("mbareplay: %v", err)
		}
		l := platform.NewLog(os.Stdout)
		for _, e := range events {
			if err := l.Append(e); err != nil {
				log.Fatalf("mbareplay: %v", err)
			}
		}
		return
	}

	if *journal == "" {
		log.Fatal("mbareplay: -journal or -synthesize required")
	}
	var state *platform.State
	if fi, err := os.Stat(*journal); err == nil && fi.IsDir() {
		// Checkpoint directory: newest valid snapshot + segment tail.
		var info *platform.RecoveryInfo
		state, info, err = platform.RecoverDir(*journal, *categories)
		if err != nil {
			log.Fatalf("mbareplay: recovering %s: %v", *journal, err)
		}
		if *strict && (len(info.CorruptSnapshots) > 0 || info.TailDropped != nil) {
			log.Fatalf("mbareplay: dir has defects (corrupt snapshots %d, tail: %v) and -strict is set",
				len(info.CorruptSnapshots), info.TailDropped)
		}
		for _, p := range info.CorruptSnapshots {
			log.Printf("mbareplay: skipped corrupt snapshot %s", p)
		}
		if info.TailDropped != nil {
			log.Printf("mbareplay: dropped torn journal tail: %v", info.TailDropped)
		}
		fmt.Printf("recovered dir: snapshot seq %d (+%d events from %d segments)\n",
			info.Snapshot.Seq, info.EventsReplayed, info.SegmentsReplayed)
	} else {
		f, err := os.Open(*journal)
		if err != nil {
			log.Fatalf("mbareplay: %v", err)
		}
		defer f.Close()
		if *strict {
			state, err = platform.ReplayLog(*categories, f)
			if err != nil {
				log.Fatalf("mbareplay: %v", err)
			}
		} else {
			var replayErr, dropped error
			state, replayErr, dropped = platform.RecoverLog(*categories, f)
			if replayErr != nil {
				log.Fatalf("mbareplay: %v", replayErr)
			}
			if dropped != nil {
				log.Printf("mbareplay: journal recovery: %v", dropped)
			}
		}
	}
	workers, tasks := state.Counts()
	fmt.Printf("replayed journal: %d live workers, %d open tasks, %d rounds closed\n",
		workers, tasks, state.Rounds())
	in, _, _ := state.Snapshot()
	s := in.ComputeStats()
	fmt.Printf("snapshot: %d eligible pairs, %d slots, %d capacity, mean pay %.2f\n",
		s.Edges, s.TotalSlots, s.TotalCapacity, s.MeanPayment)

	if *assign != "" {
		solver, err := core.ByName(*assign)
		if err != nil {
			log.Fatalf("mbareplay: %v", err)
		}
		svc, err := platform.NewService(state, solver, benefit.DefaultParams(), nil, *seed)
		if err != nil {
			log.Fatalf("mbareplay: %v", err)
		}
		res, err := svc.CloseRound()
		if err != nil {
			log.Fatalf("mbareplay: %v", err)
		}
		fmt.Printf("assignment round %d: %s\n", res.Round, res.Metrics.String())
	}
}
