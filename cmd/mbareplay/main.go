// Command mbareplay replays a JSONL event journal (as written by mbaserve
// or generated with -synthesize) into a market state, prints the resulting
// statistics and optionally runs one assignment round over it.
//
// Usage:
//
//	mbareplay -journal market.jsonl -categories 30 -assign greedy
//	mbareplay -synthesize 500 -categories 30 > trace.jsonl
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/benefit"
	"repro/internal/core"
	"repro/internal/market"
	"repro/internal/platform"
)

func main() {
	var (
		journal    = flag.String("journal", "", "JSONL event journal to replay")
		categories = flag.Int("categories", 30, "category universe size")
		assign     = flag.String("assign", "", "run one assignment round with this algorithm after replay")
		synthesize = flag.Int("synthesize", 0, "instead of replaying, emit a synthetic trace of N events to stdout")
		seed       = flag.Uint64("seed", 42, "seed for -synthesize and randomised solvers")
	)
	flag.Parse()

	if *synthesize > 0 {
		events, err := platform.SyntheticTrace(platform.TraceConfig{
			Market:     market.FreelanceTraceConfig(0, 0),
			Events:     *synthesize,
			RoundEvery: 50,
		}, *seed)
		if err != nil {
			log.Fatalf("mbareplay: %v", err)
		}
		l := platform.NewLog(os.Stdout)
		for _, e := range events {
			if err := l.Append(e); err != nil {
				log.Fatalf("mbareplay: %v", err)
			}
		}
		return
	}

	if *journal == "" {
		log.Fatal("mbareplay: -journal or -synthesize required")
	}
	f, err := os.Open(*journal)
	if err != nil {
		log.Fatalf("mbareplay: %v", err)
	}
	defer f.Close()
	state, err := platform.ReplayLog(*categories, f)
	if err != nil {
		log.Fatalf("mbareplay: %v", err)
	}
	workers, tasks := state.Counts()
	fmt.Printf("replayed journal: %d live workers, %d open tasks, %d rounds closed\n",
		workers, tasks, state.Rounds())
	in, _, _ := state.Snapshot()
	s := in.ComputeStats()
	fmt.Printf("snapshot: %d eligible pairs, %d slots, %d capacity, mean pay %.2f\n",
		s.Edges, s.TotalSlots, s.TotalCapacity, s.MeanPayment)

	if *assign != "" {
		solver, err := core.ByName(*assign)
		if err != nil {
			log.Fatalf("mbareplay: %v", err)
		}
		svc, err := platform.NewService(state, solver, benefit.DefaultParams(), nil, *seed)
		if err != nil {
			log.Fatalf("mbareplay: %v", err)
		}
		res, err := svc.CloseRound()
		if err != nil {
			log.Fatalf("mbareplay: %v", err)
		}
		fmt.Printf("assignment round %d: %s\n", res.Round, res.Metrics.String())
	}
}
