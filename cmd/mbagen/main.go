// Command mbagen generates synthetic labor-market datasets and writes them
// as JSON (full instance) or CSV (worker/task tables) for inspection or for
// replaying the same market in other systems.
//
// Usage:
//
//	mbagen -workload freelance -workers 500 -tasks 300 -seed 7 > market.json
//	mbagen -workload zipf -skew 1.2 -format csv-tasks
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/market"
)

func main() {
	var (
		workload = flag.String("workload", "freelance", "freelance | microtask | uniform | zipf")
		workers  = flag.Int("workers", 500, "number of workers")
		tasks    = flag.Int("tasks", 300, "number of tasks")
		skew     = flag.Float64("skew", 1.0, "Zipf exponent (zipf workload only)")
		seed     = flag.Uint64("seed", 42, "generator seed")
		format   = flag.String("format", "json", "json | csv-tasks | csv-workers | stats")
	)
	flag.Parse()

	var cfg market.Config
	switch *workload {
	case "freelance":
		cfg = market.FreelanceTraceConfig(*workers, *tasks)
	case "microtask":
		cfg = market.MicrotaskTraceConfig(*workers, *tasks)
	case "uniform":
		cfg = market.UniformConfig(*workers, *tasks)
	case "zipf":
		cfg = market.ZipfConfig(*workers, *tasks, *skew)
	default:
		fmt.Fprintf(os.Stderr, "mbagen: unknown workload %q\n", *workload)
		os.Exit(2)
	}

	in, err := market.Generate(cfg, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mbagen:", err)
		os.Exit(1)
	}
	switch *format {
	case "json":
		err = in.WriteJSON(os.Stdout)
	case "csv-tasks":
		err = in.WriteCSVTasks(os.Stdout)
	case "csv-workers":
		err = in.WriteCSVWorkers(os.Stdout)
	case "stats":
		s := in.ComputeStats()
		_, err = fmt.Printf("workload=%s workers=%d tasks=%d categories=%d edges=%d slots=%d capacity=%d mean_pay=%.2f mean_acc=%.3f\n",
			s.Name, s.Workers, s.Tasks, s.Categories, s.Edges, s.TotalSlots, s.TotalCapacity, s.MeanPayment, s.MeanAccuracy)
	default:
		fmt.Fprintf(os.Stderr, "mbagen: unknown format %q\n", *format)
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "mbagen:", err)
		os.Exit(1)
	}
}
