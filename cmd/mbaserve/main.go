// Command mbaserve runs the live assignment service: a JSON HTTP API over
// the event-sourced market state, journaling every mutation to an
// append-only JSONL log that can be replayed on restart.
//
// Usage:
//
//	mbaserve -addr :8080 -categories 30 -solver greedy -journal market.jsonl
//	mbaserve -snapshot-dir ./data -snapshot-every 50 -segment-bytes 4194304
//
// With -snapshot-dir the journal is segmented inside that directory and a
// checkpoint (atomic CRC-checked snapshot + journal compaction) is taken
// every -snapshot-every rounds, so restart recovery costs O(state + tail)
// instead of replaying history from genesis.
//
// API (see internal/platform.Server):
//
//	POST   /v1/workers      add a worker (market.Worker JSON)
//	DELETE /v1/workers/{id} remove a worker
//	POST   /v1/tasks        post a task (market.Task JSON)
//	DELETE /v1/tasks/{id}   close a task
//	GET    /v1/stats        live counts
//	POST   /v1/rounds       close an assignment round (?drain=true to close
//	                        assigned tasks afterwards)
//	POST   /v1/checkpoint   take a checkpoint now (snapshot mode only)
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/benefit"
	"repro/internal/core"
	"repro/internal/platform"
)

// buildSolver resolves the serving solver from the CLI's robustness
// flags.  -fallback-chain wraps named solvers into a core.Degrader; a
// -round-deadline alone implies the chain "<solver>,greedy" so "bound the
// solve" never silently means "maybe serve nothing".
func buildSolver(name, chain string, deadline time.Duration) (core.Solver, error) {
	if chain == "" && deadline > 0 {
		if name == "greedy" {
			chain = name
		} else {
			chain = name + ",greedy"
		}
	}
	if chain == "" {
		return core.ByName(name)
	}
	var stages []core.Solver
	for _, stage := range strings.Split(chain, ",") {
		s, err := core.ByName(strings.TrimSpace(stage))
		if err != nil {
			return nil, err
		}
		stages = append(stages, s)
	}
	return core.NewDegrader(deadline, stages...), nil
}

// parseFsync maps the -fsync flag to a journal policy.
func parseFsync(v string) (platform.FsyncPolicy, error) {
	switch v {
	case "never":
		return platform.FsyncNever, nil
	case "always":
		return platform.FsyncAlways, nil
	}
	return 0, fmt.Errorf("bad -fsync %q (want never|always)", v)
}

func main() {
	var (
		addr          = flag.String("addr", ":8080", "listen address")
		categories    = flag.Int("categories", 30, "category universe size")
		solverName    = flag.String("solver", "greedy", "assignment algorithm per round")
		lambda        = flag.Float64("lambda", 0.5, "requester-side weight in [0,1]")
		journal       = flag.String("journal", "", "append-only event log path (replayed on start; empty disables)")
		seed          = flag.Uint64("seed", 42, "seed for randomised solvers")
		drainTimeout  = flag.Duration("drain-timeout", 30*time.Second, "graceful-shutdown drain limit for in-flight requests")
		roundDeadline = flag.Duration("round-deadline", 0, "per-round solve budget; past it the round degrades down the fallback chain (0 disables)")
		fallbackChain = flag.String("fallback-chain", "", "comma-separated degradation chain, best first (e.g. exact,local-search,greedy); empty with -round-deadline implies '<solver>,greedy'")
		fsyncMode     = flag.String("fsync", "never", "journal durability: never (OS page cache) or always (fsync per event)")
		snapshotDir   = flag.String("snapshot-dir", "", "checkpoint directory: segmented journal + atomic snapshots (mutually exclusive with -journal)")
		snapshotEvery = flag.Int("snapshot-every", 50, "take a checkpoint every N closed rounds (0 = only via POST /v1/checkpoint)")
		snapshotKeep  = flag.Int("snapshot-keep", 2, "snapshot generations to retain as the corrupt-snapshot fallback chain")
		segmentBytes  = flag.Int64("segment-bytes", platform.DefaultSegmentBytes, "seal a journal segment once it reaches this many bytes")
	)
	flag.Parse()
	if *snapshotDir != "" && *journal != "" {
		log.Fatal("mbaserve: -snapshot-dir and -journal are mutually exclusive (the segmented journal lives in the snapshot dir)")
	}

	solver, err := buildSolver(*solverName, *fallbackChain, *roundDeadline)
	if err != nil {
		log.Fatalf("mbaserve: %v", err)
	}
	fsync, err := parseFsync(*fsyncMode)
	if err != nil {
		log.Fatalf("mbaserve: %v", err)
	}

	// Bounded retry absorbs transient write blips (a failed event is
	// rolled back, not half-remembered); fsync policy per the flag.
	logOpts := platform.LogOptions{
		Fsync:        fsync,
		MaxRetries:   3,
		RetryBackoff: 2 * time.Millisecond,
	}

	var state *platform.State
	var jnl platform.Journal
	var jfile *os.File             // single-file mode shutdown handle
	var seg *platform.SegmentedLog // checkpoint mode journal
	var cm *platform.CheckpointManager
	switch {
	case *snapshotDir != "":
		// O(state + tail) recovery: newest valid snapshot, then only the
		// journal segments written after it.
		var info *platform.RecoveryInfo
		state, info, err = platform.RecoverDir(*snapshotDir, *categories)
		if err != nil {
			log.Fatalf("mbaserve: recovering %s: %v", *snapshotDir, err)
		}
		for _, p := range info.CorruptSnapshots {
			log.Printf("mbaserve: recovery skipped corrupt snapshot %s", p)
		}
		if info.TailDropped != nil {
			log.Printf("mbaserve: recovery dropped torn journal tail: %v", info.TailDropped)
		}
		w, t := state.Counts()
		log.Printf("recovered checkpoint dir: %d workers, %d tasks, %d rounds (snapshot seq %d + %d events from %d segments)",
			w, t, state.Rounds(), info.Snapshot.Seq, info.EventsReplayed, info.SegmentsReplayed)
		// OpenSegmentedLog truncates any torn tail before appending — new
		// events never land after corrupt bytes.
		seg, err = platform.OpenSegmentedLog(*snapshotDir, platform.SegmentOptions{
			MaxBytes: *segmentBytes,
			Log:      logOpts,
		})
		if err != nil {
			log.Fatalf("mbaserve: opening segmented journal: %v", err)
		}
		jnl = seg
	case *journal != "":
		// Single-file mode: replay tolerating a torn tail from a crash
		// mid-append, truncate it away, then keep appending.
		jf, err := platform.OpenJournal(*journal, *categories, logOpts)
		if err != nil {
			log.Fatalf("mbaserve: replaying %s: %v", *journal, err)
		}
		if jf.Dropped != nil {
			log.Printf("mbaserve: journal recovery: %v (truncated %d torn bytes)", jf.Dropped, jf.Truncated)
		}
		state = jf.State
		w, t := state.Counts()
		log.Printf("replayed journal: %d workers, %d tasks, %d rounds", w, t, state.Rounds())
		jnl = jf.Log
		jfile = jf.File
	}
	if state == nil {
		if state, err = platform.NewState(*categories); err != nil {
			log.Fatalf("mbaserve: %v", err)
		}
	}

	svc, err := platform.NewService(state, solver, benefit.Params{Lambda: *lambda, Beta: 0.5}, jnl, *seed)
	if err != nil {
		log.Fatalf("mbaserve: %v", err)
	}
	if seg != nil {
		cm, err = platform.NewCheckpointManager(state, seg, platform.CheckpointOptions{
			EveryRounds: *snapshotEvery,
			Keep:        *snapshotKeep,
		})
		if err != nil {
			log.Fatalf("mbaserve: %v", err)
		}
		svc.SetCheckpointer(cm)
	}
	// Serve with sane timeouts (a stuck client must not pin a connection
	// forever; round closes are bounded by WriteTimeout) and shut down
	// gracefully: on SIGINT/SIGTERM stop accepting, drain in-flight
	// requests — including a round mid-solve — then flush and close the
	// journal so the last accepted mutation is durable before exit.
	srv := &http.Server{
		Addr:              *addr,
		Handler:           platform.NewServerWithOptions(svc, platform.NewServerOptions()),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      2 * time.Minute,
		IdleTimeout:       2 * time.Minute,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.ListenAndServe() }()
	fmt.Printf("mbaserve listening on %s (solver=%s, categories=%d)\n", *addr, *solverName, *categories)

	select {
	case err := <-serveErr:
		log.Fatalf("mbaserve: %v", err)
	case <-ctx.Done():
		log.Printf("mbaserve: signal received, draining")
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		log.Printf("mbaserve: shutdown: %v", err)
	}
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("mbaserve: serve: %v", err)
	}
	if jfile != nil {
		if err := jfile.Sync(); err != nil {
			log.Printf("mbaserve: journal sync: %v", err)
		}
		if err := jfile.Close(); err != nil {
			log.Printf("mbaserve: journal close: %v", err)
		}
	}
	if cm != nil {
		// A parting checkpoint makes the next start near-instant: recovery
		// loads the snapshot and replays an empty tail.
		if _, err := cm.Checkpoint(); err != nil {
			log.Printf("mbaserve: shutdown checkpoint: %v", err)
		}
	}
	if seg != nil {
		if err := seg.Close(); err != nil {
			log.Printf("mbaserve: journal close: %v", err)
		}
	}
	log.Printf("mbaserve: shut down cleanly")
}
