// Command mbaserve runs the live assignment service: a JSON HTTP API over
// the event-sourced market state, journaling every mutation to an
// append-only JSONL log that can be replayed on restart.
//
// Usage:
//
//	mbaserve -addr :8080 -categories 30 -solver greedy -journal market.jsonl
//
// API (see internal/platform.Server):
//
//	POST   /v1/workers      add a worker (market.Worker JSON)
//	DELETE /v1/workers/{id} remove a worker
//	POST   /v1/tasks        post a task (market.Task JSON)
//	DELETE /v1/tasks/{id}   close a task
//	GET    /v1/stats        live counts
//	POST   /v1/rounds       close an assignment round (?drain=true to close
//	                        assigned tasks afterwards)
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"

	"repro/internal/benefit"
	"repro/internal/core"
	"repro/internal/platform"
)

func main() {
	var (
		addr       = flag.String("addr", ":8080", "listen address")
		categories = flag.Int("categories", 30, "category universe size")
		solverName = flag.String("solver", "greedy", "assignment algorithm per round")
		lambda     = flag.Float64("lambda", 0.5, "requester-side weight in [0,1]")
		journal    = flag.String("journal", "", "append-only event log path (replayed on start; empty disables)")
		seed       = flag.Uint64("seed", 42, "seed for randomised solvers")
	)
	flag.Parse()

	solver, err := core.ByName(*solverName)
	if err != nil {
		log.Fatalf("mbaserve: %v", err)
	}

	var state *platform.State
	var jlog *platform.Log
	if *journal != "" {
		// Replay any existing journal, tolerating a torn tail from a crash
		// mid-append, then keep appending to it.
		if f, err := os.Open(*journal); err == nil {
			var replayErr, dropped error
			state, replayErr, dropped = platform.RecoverLog(*categories, f)
			f.Close()
			if replayErr != nil {
				log.Fatalf("mbaserve: replaying %s: %v", *journal, replayErr)
			}
			if dropped != nil {
				log.Printf("mbaserve: journal recovery: %v", dropped)
			}
			w, t := state.Counts()
			log.Printf("replayed journal: %d workers, %d tasks, %d rounds", w, t, state.Rounds())
		} else if !os.IsNotExist(err) {
			log.Fatalf("mbaserve: opening journal: %v", err)
		}
		f, err := os.OpenFile(*journal, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			log.Fatalf("mbaserve: opening journal for append: %v", err)
		}
		defer f.Close()
		jlog = platform.NewLog(f)
	}
	if state == nil {
		if state, err = platform.NewState(*categories); err != nil {
			log.Fatalf("mbaserve: %v", err)
		}
	}

	svc, err := platform.NewService(state, solver, benefit.Params{Lambda: *lambda, Beta: 0.5}, jlog, *seed)
	if err != nil {
		log.Fatalf("mbaserve: %v", err)
	}
	fmt.Printf("mbaserve listening on %s (solver=%s, categories=%d)\n", *addr, *solverName, *categories)
	if err := http.ListenAndServe(*addr, platform.NewServer(svc)); err != nil {
		log.Fatalf("mbaserve: %v", err)
	}
}
