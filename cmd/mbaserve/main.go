// Command mbaserve runs the live assignment service: a JSON HTTP API over
// the event-sourced market state, journaling every mutation to an
// append-only log (JSONL, or the framed binary format with
// -journal-format binary) that can be replayed on restart.
//
// Usage:
//
//	mbaserve -addr :8080 -categories 30 -solver greedy -journal market.jsonl
//	mbaserve -snapshot-dir ./data -snapshot-every 50 -segment-bytes 4194304
//	mbaserve -shards 8 -snapshot-dir ./data -solver incremental
//	mbaserve -snapshot-dir ./data -journal-format binary -fsync always
//	mbaserve -follow http://primary:8080 -snapshot-dir ./standby
//	mbaserve -follow http://primary:8080 -snapshot-dir ./standby -auto-takeover
//
// With -snapshot-dir the journal is segmented inside that directory and a
// checkpoint (atomic CRC-checked snapshot + journal compaction) is taken
// every -snapshot-every rounds, so restart recovery costs O(state + tail)
// instead of replaying history from genesis.
//
// -journal-format selects the encoding of newly written journal streams:
// json (one event per line, greppable) or binary (CRC32C-framed records,
// the high-throughput choice).  Recovery auto-detects the format per
// file, so switching flag values across restarts — a directory with mixed
// .jsonl and .mbaj segments — replays transparently.  Appends are group-
// committed: concurrent submits coalesce into one write + one fsync.
//
// With -shards N the market is partitioned into N shard markets (tasks by
// category, workers resident in every shard of their specialties), each
// with its own state, segmented journal and checkpoints under
// <snapshot-dir>/shard-%04d (shard-0000, shard-0001, …), solved per round
// with its own solver instance and merged through the cross-shard
// reconciliation pass.  The API is unchanged.  -journal (single-file
// mode) is incompatible with -shards.
//
// Admission control is on by default: every route passes a priority-
// aware admission controller (per-class token buckets keyed by the
// X-MBA-Client header, an adaptive concurrency limit in front of the
// journaled write paths, and brownout shedding of single-event writes
// under sustained overload).  Shed requests get 429 + a jittered
// Retry-After; healthz reports "overloaded" (still 200) while shedding.
// Tune with -max-inflight and -rate-high/-rate-medium/-rate-low, or
// restore the pre-admission semantics with -admission=off.
//
// With -follow the process runs as a replication standby instead: it
// tails the primary's journal stream (GET /v1/journal/stream), persists
// every event into its own -snapshot-dir, and serves GET /v1/healthz
// (reporting replication lag).  A follower that lags past the primary's
// segment retention bootstraps itself from GET /v1/snapshot
// automatically.  Manual takeover is restarting without -follow on the
// same directory; with -auto-takeover the standby instead probes the
// primary's health and, after -probe-failures consecutive failed probes,
// promotes itself in-process — recovering its replicated journal,
// bumping the replication epoch (which fences the old primary: its
// writes die with 409 once it observes the higher epoch), and swapping
// in the full serving API on the same address.
//
// API (see internal/platform.Server):
//
//	POST   /v1/workers      add a worker (market.Worker JSON)
//	DELETE /v1/workers/{id} remove a worker
//	POST   /v1/tasks        post a task (market.Task JSON)
//	DELETE /v1/tasks/{id}   close a task
//	POST   /v1/batch        apply a JSON array of events all-or-nothing
//	GET    /v1/stats        live counts
//	GET    /v1/healthz      journal/replication health (503 when degraded)
//	GET    /v1/journal/stream?from=N  binary event stream for followers
//	GET    /v1/snapshot     newest CRC-framed snapshot (follower resync)
//	POST   /v1/rounds       close an assignment round (?drain=true to close
//	                        assigned tasks afterwards)
//	POST   /v1/checkpoint   take a checkpoint now (snapshot mode only)
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/benefit"
	"repro/internal/core"
	"repro/internal/platform"
)

// buildSolver resolves the serving solver from the CLI's robustness
// flags.  -fallback-chain wraps named solvers into a core.Degrader; a
// -round-deadline alone implies the chain "<solver>,greedy" so "bound the
// solve" never silently means "maybe serve nothing".  Called once per
// shard: stateful solvers (incremental duals, degrader reports) must not
// be shared between concurrently solving shards.
func buildSolver(name, chain string, deadline time.Duration) (core.Solver, error) {
	if chain == "" && deadline > 0 {
		if name == "greedy" {
			chain = name
		} else {
			chain = name + ",greedy"
		}
	}
	if chain == "" {
		return core.ByName(name)
	}
	var stages []core.Solver
	for _, stage := range strings.Split(chain, ",") {
		s, err := core.ByName(strings.TrimSpace(stage))
		if err != nil {
			return nil, err
		}
		stages = append(stages, s)
	}
	return core.NewDegrader(deadline, stages...), nil
}

// runFollower runs the replication-standby mode behind the failover
// supervisor: tail the primary's journal stream into the local snapshot
// dir, serve /v1/healthz (and, with -auto-takeover, promote to a full
// primary on the same address once the primary is declared dead).
// Manual takeover remains restarting without -follow on the directory.
func runFollower(primary, dir, addr string, drainTimeout time.Duration, opts platform.FailoverOptions) {
	fo, err := platform.NewFailover(primary, dir, opts)
	if err != nil {
		log.Fatalf("mbaserve: %v", err)
	}
	log.Printf("mbaserve: following %s from seq %d (auto-takeover %v)",
		primary, fo.Follower().Seq()+1, opts.AutoTakeover)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	runDone := make(chan error, 1)
	go func() { runDone <- fo.Run(ctx) }()

	srv := &http.Server{
		Addr:              addr,
		Handler:           fo,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		// Round closes after a promotion are bounded like a primary's.
		WriteTimeout: 2 * time.Minute,
		IdleTimeout:  2 * time.Minute,
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.ListenAndServe() }()
	fmt.Printf("mbaserve following %s, serving on %s\n", primary, addr)

	select {
	case err := <-serveErr:
		log.Fatalf("mbaserve: %v", err)
	case <-ctx.Done():
		log.Printf("mbaserve: signal received, stopping replication")
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		log.Printf("mbaserve: shutdown: %v", err)
	}
	if err := <-runDone; err != nil && !errors.Is(err, context.Canceled) {
		log.Printf("mbaserve: failover supervisor: %v", err)
	}
	f := fo.Follower()
	log.Printf("mbaserve: standby shut down cleanly (phase %s, seq %d, lag %d)", fo.Phase(), f.Seq(), f.Lag())
}

// serverOptions assembles the HTTP-layer limits from the admission
// flags.  -admission=off returns the pre-admission options untouched
// (seed semantics: nothing rate-limited, nothing shed).  A rate flag of
// 0 keeps the recommended default; a negative value means unlimited.
func serverOptions(admission bool, maxInflight int, rateHigh, rateMedium, rateLow float64, seed uint64) platform.ServerOptions {
	opts := platform.NewServerOptions()
	if !admission {
		return opts
	}
	adm := platform.NewAdmissionOptions()
	adm.Seed = seed
	if maxInflight > 0 {
		adm.MaxInflight = maxInflight
		if adm.MinInflight > maxInflight {
			adm.MinInflight = maxInflight
		}
	}
	override := func(dst *float64, v float64) {
		switch {
		case v > 0:
			*dst = v
		case v < 0:
			*dst = 0 // 0 in AdmissionOptions = unlimited
		}
	}
	override(&adm.RateHigh, rateHigh)
	override(&adm.RateMedium, rateMedium)
	override(&adm.RateLow, rateLow)
	opts.Admission = adm
	return opts
}

// parseFsync maps the -fsync flag to a journal policy.
func parseFsync(v string) (platform.FsyncPolicy, error) {
	switch v {
	case "never":
		return platform.FsyncNever, nil
	case "always":
		return platform.FsyncAlways, nil
	}
	return 0, fmt.Errorf("bad -fsync %q (want never|always)", v)
}

func parseOnOff(name, v string) (bool, error) {
	switch v {
	case "on", "true":
		return true, nil
	case "off", "false":
		return false, nil
	}
	return false, fmt.Errorf("bad -%s %q (want on|off)", name, v)
}

func main() {
	var (
		addr          = flag.String("addr", ":8080", "listen address")
		categories    = flag.Int("categories", 30, "category universe size")
		solverName    = flag.String("solver", "greedy", "assignment algorithm per round")
		lambda        = flag.Float64("lambda", 0.5, "requester-side weight in [0,1]")
		journal       = flag.String("journal", "", "append-only event log path (replayed on start; empty disables)")
		seed          = flag.Uint64("seed", 42, "seed for randomised solvers")
		drainTimeout  = flag.Duration("drain-timeout", 30*time.Second, "graceful-shutdown drain limit for in-flight requests")
		roundDeadline = flag.Duration("round-deadline", 0, "per-round solve budget; past it the round degrades down the fallback chain (0 disables)")
		fallbackChain = flag.String("fallback-chain", "", "comma-separated degradation chain, best first (e.g. exact,local-search,greedy); empty with -round-deadline implies '<solver>,greedy'")
		fsyncMode     = flag.String("fsync", "never", "journal durability: never (OS page cache) or always (fsync per event)")
		snapshotDir   = flag.String("snapshot-dir", "", "checkpoint directory: segmented journal + atomic snapshots (mutually exclusive with -journal)")
		snapshotEvery = flag.Int("snapshot-every", 50, "take a checkpoint every N closed rounds (0 = only via POST /v1/checkpoint)")
		snapshotKeep  = flag.Int("snapshot-keep", 2, "snapshot generations to retain as the corrupt-snapshot fallback chain")
		segmentBytes  = flag.Int64("segment-bytes", platform.DefaultSegmentBytes, "seal a journal segment once it reaches this many bytes")
		numShards     = flag.Int("shards", 1, "partition the market into N shard markets solved concurrently per round (1 = single market)")
		pprofAddr     = flag.String("pprof-addr", "", "serve net/http/pprof debug handlers on this address (empty disables)")
		journalFmt    = flag.String("journal-format", "json", "encoding for newly written journal streams: json or binary (recovery auto-detects)")
		follow        = flag.String("follow", "", "run as a replication follower of this primary base URL (requires -snapshot-dir)")
		autoTakeover  = flag.Bool("auto-takeover", false, "with -follow: promote to primary automatically once the primary fails -probe-failures consecutive health probes")
		probeInterval = flag.Duration("probe-interval", 500*time.Millisecond, "with -follow: primary health-probe cadence")
		probeFailures = flag.Int("probe-failures", 5, "with -follow: consecutive failed probes before takeover")
		admissionMode = flag.String("admission", "on", "priority-aware admission control: on or off (off preserves pre-admission semantics)")
		maxInflight   = flag.Int("max-inflight", 0, "ceiling of the adaptive concurrency limit on journaled writes (0 = recommended default)")
		rateHigh      = flag.Float64("rate-high", 0, "sustained req/s budget for read traffic (0 = recommended default; negative = unlimited)")
		rateMedium    = flag.Float64("rate-medium", 0, "sustained req/s budget for single-event writes (0 = recommended default; negative = unlimited)")
		rateLow       = flag.Float64("rate-low", 0, "sustained req/s budget for batch ingest, round closes and checkpoints (0 = recommended default; negative = unlimited)")
	)
	flag.Parse()
	if *snapshotDir != "" && *journal != "" {
		log.Fatal("mbaserve: -snapshot-dir and -journal are mutually exclusive (the segmented journal lives in the snapshot dir)")
	}
	if *numShards < 1 {
		log.Fatalf("mbaserve: -shards %d < 1", *numShards)
	}
	if *numShards > 1 && *journal != "" {
		log.Fatal("mbaserve: -shards needs per-shard journals; use -snapshot-dir instead of -journal")
	}
	if *follow != "" {
		if *snapshotDir == "" {
			log.Fatal("mbaserve: -follow needs -snapshot-dir for the replicated journal")
		}
		if *numShards > 1 || *journal != "" {
			log.Fatal("mbaserve: -follow is incompatible with -shards and -journal")
		}
	}

	fsync, err := parseFsync(*fsyncMode)
	if err != nil {
		log.Fatalf("mbaserve: %v", err)
	}
	admission, err := parseOnOff("admission", *admissionMode)
	if err != nil {
		log.Fatalf("mbaserve: %v", err)
	}
	format, err := platform.ParseJournalFormat(*journalFmt)
	if err != nil {
		log.Fatalf("mbaserve: %v", err)
	}
	// Bounded retry absorbs transient write blips (a failed event is
	// rolled back, not half-remembered); fsync policy per the flag.
	// Group commit coalesces concurrent submits into one write + fsync —
	// the ack-means-durable contract is unchanged, only the fsync cost is
	// shared.
	logOpts := platform.LogOptions{
		Fsync:        fsync,
		MaxRetries:   3,
		RetryBackoff: 2 * time.Millisecond,
		Format:       format,
		GroupCommit:  true,
	}
	params := benefit.Params{Lambda: *lambda, Beta: 0.5}
	srvOpts := serverOptions(admission, *maxInflight, *rateHigh, *rateMedium, *rateLow, *seed)

	if *follow != "" {
		solver, err := buildSolver(*solverName, *fallbackChain, *roundDeadline)
		if err != nil {
			log.Fatalf("mbaserve: %v", err)
		}
		runFollower(*follow, *snapshotDir, *addr, *drainTimeout, platform.FailoverOptions{
			Follower: platform.FollowerOptions{
				NumCategories: *categories,
				Segment: platform.SegmentOptions{
					MaxBytes: *segmentBytes,
					Log:      logOpts,
				},
			},
			ProbeInterval: *probeInterval,
			ProbeFailures: *probeFailures,
			AutoTakeover:  *autoTakeover,
			Seed:          *seed,
			Solver:        solver,
			Params:        params,
			Server:        srvOpts,
			// A promoted primary keeps the checkpoint/compaction policy a
			// restarted primary on this directory would have.
			Checkpoint: &platform.CheckpointOptions{
				EveryRounds: *snapshotEvery,
				Keep:        *snapshotKeep,
			},
		})
		return
	}

	if *pprofAddr != "" {
		// The debug endpoint gets its own mux and listener: profiling must
		// never be reachable through the public API address.
		pm := http.NewServeMux()
		pm.HandleFunc("/debug/pprof/", pprof.Index)
		pm.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		pm.HandleFunc("/debug/pprof/profile", pprof.Profile)
		pm.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		pm.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() {
			log.Printf("mbaserve: pprof debug endpoint on %s", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, pm); err != nil {
				log.Printf("mbaserve: pprof: %v", err)
			}
		}()
	}

	var backend platform.Backend
	// Shutdown resources, filled by whichever mode is assembled below.
	var jfile *os.File                // single-file journal handle
	var segs []*platform.SegmentedLog // segmented journals (1 or N)
	var cms []*platform.CheckpointManager

	if *numShards > 1 {
		bundles := make([]platform.Shard, *numShards)
		var states []*platform.State
		if *snapshotDir != "" {
			var infos []*platform.RecoveryInfo
			states, infos, err = platform.RecoverShardedDir(*snapshotDir, *categories, *numShards)
			if err != nil {
				log.Fatalf("mbaserve: recovering %s: %v", *snapshotDir, err)
			}
			for k, info := range infos {
				for _, p := range info.CorruptSnapshots {
					log.Printf("mbaserve: shard %d recovery skipped corrupt snapshot %s", k, p)
				}
				if info.TailDropped != nil {
					log.Printf("mbaserve: shard %d recovery dropped torn journal tail: %v", k, info.TailDropped)
				}
				w, t := states[k].Counts()
				log.Printf("recovered shard %d: %d workers, %d tasks, %d rounds (+%d events from %d segments)",
					k, w, t, states[k].Rounds(), info.EventsReplayed, info.SegmentsReplayed)
			}
		} else {
			states = make([]*platform.State, *numShards)
			for k := range states {
				if states[k], err = platform.NewState(*categories); err != nil {
					log.Fatalf("mbaserve: %v", err)
				}
			}
		}
		for k := range bundles {
			solver, err := buildSolver(*solverName, *fallbackChain, *roundDeadline)
			if err != nil {
				log.Fatalf("mbaserve: %v", err)
			}
			bundles[k] = platform.Shard{State: states[k], Solver: solver}
			if *snapshotDir != "" {
				seg, err := platform.OpenSegmentedLog(platform.ShardDir(*snapshotDir, k), platform.SegmentOptions{
					MaxBytes: *segmentBytes,
					Log:      logOpts,
				})
				if err != nil {
					log.Fatalf("mbaserve: opening shard %d journal: %v", k, err)
				}
				cm, err := platform.NewCheckpointManager(states[k], seg, platform.CheckpointOptions{
					EveryRounds: *snapshotEvery,
					Keep:        *snapshotKeep,
				})
				if err != nil {
					log.Fatalf("mbaserve: %v", err)
				}
				bundles[k].Journal = seg
				bundles[k].Checkpoint = cm
				segs = append(segs, seg)
				cms = append(cms, cm)
			}
		}
		ss, err := platform.NewShardedService(bundles, params, platform.ShardedOptions{}, *seed)
		if err != nil {
			log.Fatalf("mbaserve: %v", err)
		}
		backend = ss
	} else {
		solver, err := buildSolver(*solverName, *fallbackChain, *roundDeadline)
		if err != nil {
			log.Fatalf("mbaserve: %v", err)
		}
		var state *platform.State
		var jnl platform.Journal
		switch {
		case *snapshotDir != "":
			// O(state + tail) recovery: newest valid snapshot, then only the
			// journal segments written after it.
			var info *platform.RecoveryInfo
			state, info, err = platform.RecoverDir(*snapshotDir, *categories)
			if err != nil {
				log.Fatalf("mbaserve: recovering %s: %v", *snapshotDir, err)
			}
			for _, p := range info.CorruptSnapshots {
				log.Printf("mbaserve: recovery skipped corrupt snapshot %s", p)
			}
			if info.TailDropped != nil {
				log.Printf("mbaserve: recovery dropped torn journal tail: %v", info.TailDropped)
			}
			w, t := state.Counts()
			log.Printf("recovered checkpoint dir: %d workers, %d tasks, %d rounds (snapshot seq %d + %d events from %d segments)",
				w, t, state.Rounds(), info.Snapshot.Seq, info.EventsReplayed, info.SegmentsReplayed)
			// OpenSegmentedLog truncates any torn tail before appending — new
			// events never land after corrupt bytes.
			seg, err := platform.OpenSegmentedLog(*snapshotDir, platform.SegmentOptions{
				MaxBytes: *segmentBytes,
				Log:      logOpts,
			})
			if err != nil {
				log.Fatalf("mbaserve: opening segmented journal: %v", err)
			}
			jnl = seg
			segs = append(segs, seg)
		case *journal != "":
			// Single-file mode: replay tolerating a torn tail from a crash
			// mid-append, truncate it away, then keep appending.
			jf, err := platform.OpenJournal(*journal, *categories, logOpts)
			if err != nil {
				log.Fatalf("mbaserve: replaying %s: %v", *journal, err)
			}
			if jf.Dropped != nil {
				log.Printf("mbaserve: journal recovery: %v (truncated %d torn bytes)", jf.Dropped, jf.Truncated)
			}
			state = jf.State
			w, t := state.Counts()
			log.Printf("replayed journal: %d workers, %d tasks, %d rounds", w, t, state.Rounds())
			jnl = jf.Log
			jfile = jf.File
		}
		if state == nil {
			if state, err = platform.NewState(*categories); err != nil {
				log.Fatalf("mbaserve: %v", err)
			}
		}
		svc, err := platform.NewService(state, solver, params, jnl, *seed)
		if err != nil {
			log.Fatalf("mbaserve: %v", err)
		}
		if len(segs) == 1 {
			cm, err := platform.NewCheckpointManager(state, segs[0], platform.CheckpointOptions{
				EveryRounds: *snapshotEvery,
				Keep:        *snapshotKeep,
			})
			if err != nil {
				log.Fatalf("mbaserve: %v", err)
			}
			svc.SetCheckpointer(cm)
			cms = append(cms, cm)
		}
		backend = svc
	}

	// Serve with sane timeouts (a stuck client must not pin a connection
	// forever; round closes are bounded by WriteTimeout) and shut down
	// gracefully: on SIGINT/SIGTERM stop accepting, drain in-flight
	// requests — including a round mid-solve — then flush and close the
	// journal(s) so the last accepted mutation is durable before exit.
	srv := &http.Server{
		Addr:              *addr,
		Handler:           platform.NewServerWithOptions(backend, srvOpts),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      2 * time.Minute,
		IdleTimeout:       2 * time.Minute,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.ListenAndServe() }()
	fmt.Printf("mbaserve listening on %s (solver=%s, categories=%d, shards=%d)\n", *addr, *solverName, *categories, *numShards)

	select {
	case err := <-serveErr:
		log.Fatalf("mbaserve: %v", err)
	case <-ctx.Done():
		log.Printf("mbaserve: signal received, draining")
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		log.Printf("mbaserve: shutdown: %v", err)
	}
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("mbaserve: serve: %v", err)
	}
	if jfile != nil {
		if err := jfile.Sync(); err != nil {
			log.Printf("mbaserve: journal sync: %v", err)
		}
		if err := jfile.Close(); err != nil {
			log.Printf("mbaserve: journal close: %v", err)
		}
	}
	for _, cm := range cms {
		// A parting checkpoint makes the next start near-instant: recovery
		// loads the snapshot and replays an empty tail.
		if _, err := cm.Checkpoint(); err != nil {
			log.Printf("mbaserve: shutdown checkpoint: %v", err)
		}
	}
	for _, seg := range segs {
		if err := seg.Close(); err != nil {
			log.Printf("mbaserve: journal close: %v", err)
		}
	}
	log.Printf("mbaserve: shut down cleanly")
}
