// Command mbabench regenerates the reconstructed tables and figures of the
// paper's evaluation (DESIGN.md §7) and hosts the benchmark-regression
// harness.
//
// Usage:
//
//	mbabench -exp all                 # run the whole suite
//	mbabench -exp R-Fig4 -seed 7      # one experiment, custom seed
//	mbabench -list                    # list experiment ids
//	mbabench -exp all -quick          # shrunken workloads (smoke run)
//	mbabench -benchjson BENCH_construction.json
//	                                  # machine-readable construction/solver
//	                                  # benchmarks at three market scales
//	mbabench -benchjson BENCH_solve.json -suites solve,round
//	                                  # steady-state solve + platform round
//	                                  # suites (workspace + arena reuse)
//	mbabench -benchjson BENCH_matching.json -suites matching
//	                                  # exact flow path, cold (serial
//	                                  # reference) vs workspace-reused
//	mbabench -benchjson BENCH_ingest.json -suites ingest
//	                                  # journaled event throughput: JSONL
//	                                  # single-event vs binary group-commit
//	                                  # vs 100-event batches, both fsyncs
//	mbabench -benchjson BENCH_overload.json -suites overload
//	                                  # admission-controlled serving under
//	                                  # 1x/2x/4x open-loop overload storms:
//	                                  # admitted latency + shed fraction
//	mbabench -benchdiff BENCH_solve.json
//	                                  # re-run a baseline's suites and fail
//	                                  # on >25% ns/op (or alloc) regressions
//	mbabench -cpuprofile cpu.pprof -memprofile heap.pprof ...
//	                                  # pprof capture around either mode
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"

	"repro/internal/experiments"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "mbabench:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		exp         = flag.String("exp", "all", "experiment id to run, or \"all\"")
		seed        = flag.Uint64("seed", 42, "workload and algorithm seed")
		quick       = flag.Bool("quick", false, "shrink workloads for a fast smoke run")
		reps        = flag.Int("reps", 0, "repetitions per data point (0 = experiment default)")
		list        = flag.Bool("list", false, "list experiment ids and exit")
		outdir      = flag.String("outdir", "", "also write each experiment's output to <outdir>/<id>.txt")
		benchjson   = flag.String("benchjson", "", "run the benchmark-regression harness and write its JSON report to this file")
		suites      = flag.String("suites", "construction", "comma-separated benchmark suites for -benchjson (construction, solve, round, matching, incremental, sharded-round, ingest, overload)")
		roundSolver = flag.String("round-solver", "", "serving solver for the round and sharded-round suites (registry name; empty = per-suite default: greedy / exact)")
		benchdiff   = flag.String("benchdiff", "", "re-run this baseline report's suites and fail on regressions beyond -benchtol")
		benchtol    = flag.Float64("benchtol", experiments.DefaultBenchTolerance, "fractional slowdown tolerated by -benchdiff before failing")
		cpuprofile  = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memprofile  = flag.String("memprofile", "", "write a heap profile at the end of the run to this file")
	)
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return nil
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "mbabench:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "mbabench:", err)
			}
		}()
	}

	if *benchdiff != "" {
		baseline, err := experiments.LoadBenchReport(*benchdiff)
		if err != nil {
			return err
		}
		fmt.Printf("re-running suites %v against %s (tolerance %.0f%%)\n",
			baseline.Suites, *benchdiff, *benchtol*100)
		cfg := experiments.BenchConfig{Seed: baseline.Seed, Suites: baseline.Suites, RoundSolver: baseline.RoundSolver}
		fresh, err := experiments.RunBenchJSON(os.Stdout, cfg)
		if err != nil {
			return err
		}
		regressions := experiments.DiffBench(os.Stdout, baseline, fresh, *benchtol)
		if len(regressions) > 0 {
			// Wall-clock benchmarks on a shared host can lose >25% to a
			// scheduler or cgroup throttling window; a real regression
			// survives an independent sample, interference does not.  Re-run
			// the suites and gate on the per-entry minimum of the two runs.
			fmt.Printf("%d possible regression(s) — running a confirmation pass\n", len(regressions))
			confirm, err := experiments.RunBenchJSON(os.Stdout, cfg)
			if err != nil {
				return err
			}
			fresh = experiments.MergeBenchMin(fresh, confirm)
			fmt.Println("best-of-two comparison:")
			regressions = experiments.DiffBench(os.Stdout, baseline, fresh, *benchtol)
		}
		if len(regressions) > 0 {
			for _, r := range regressions {
				fmt.Fprintln(os.Stderr, "mbabench: regression:", r)
			}
			return fmt.Errorf("%d benchmark regression(s) vs %s", len(regressions), *benchdiff)
		}
		fmt.Printf("no regressions vs %s (%d entries compared)\n", *benchdiff, len(baseline.Results))
		return nil
	}

	if *benchjson != "" {
		var suiteList []string
		for _, s := range strings.Split(*suites, ",") {
			if s = strings.TrimSpace(s); s != "" {
				suiteList = append(suiteList, s)
			}
		}
		rep, err := experiments.RunBenchJSON(os.Stdout, experiments.BenchConfig{Seed: *seed, Suites: suiteList, RoundSolver: *roundSolver})
		if err != nil {
			return err
		}
		f, err := os.Create(*benchjson)
		if err != nil {
			return err
		}
		if err := rep.WriteJSON(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %s (%d entries)\n", *benchjson, len(rep.Results))
		return nil
	}

	cfg := experiments.RunConfig{Seed: *seed, Quick: *quick, Reps: *reps}
	if *outdir != "" {
		if err := os.MkdirAll(*outdir, 0o755); err != nil {
			return err
		}
	}
	runOne := func(e experiments.Experiment) error {
		var w io.Writer = os.Stdout
		var f *os.File
		if *outdir != "" {
			var err error
			f, err = os.Create(filepath.Join(*outdir, e.ID+".txt"))
			if err != nil {
				return err
			}
			w = io.MultiWriter(os.Stdout, f)
		}
		err := experiments.RunOne(w, e, cfg)
		if f != nil {
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		return err
	}
	if *exp == "all" {
		for _, e := range experiments.All() {
			if err := runOne(e); err != nil {
				return fmt.Errorf("%s: %w", e.ID, err)
			}
		}
		return nil
	}
	e, err := experiments.ByID(*exp)
	if err != nil {
		return err
	}
	return runOne(e)
}
