// Command mbabench regenerates the reconstructed tables and figures of the
// paper's evaluation (DESIGN.md §7) and hosts the benchmark-regression
// harness.
//
// Usage:
//
//	mbabench -exp all                 # run the whole suite
//	mbabench -exp R-Fig4 -seed 7      # one experiment, custom seed
//	mbabench -list                    # list experiment ids
//	mbabench -exp all -quick          # shrunken workloads (smoke run)
//	mbabench -benchjson BENCH_construction.json
//	                                  # machine-readable construction/solver
//	                                  # benchmarks at three market scales
//	mbabench -cpuprofile cpu.pprof -memprofile heap.pprof ...
//	                                  # pprof capture around either mode
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"

	"repro/internal/experiments"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "mbabench:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		exp        = flag.String("exp", "all", "experiment id to run, or \"all\"")
		seed       = flag.Uint64("seed", 42, "workload and algorithm seed")
		quick      = flag.Bool("quick", false, "shrink workloads for a fast smoke run")
		reps       = flag.Int("reps", 0, "repetitions per data point (0 = experiment default)")
		list       = flag.Bool("list", false, "list experiment ids and exit")
		outdir     = flag.String("outdir", "", "also write each experiment's output to <outdir>/<id>.txt")
		benchjson  = flag.String("benchjson", "", "run the benchmark-regression harness and write its JSON report to this file")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile at the end of the run to this file")
	)
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return nil
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "mbabench:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "mbabench:", err)
			}
		}()
	}

	if *benchjson != "" {
		rep, err := experiments.RunBenchJSON(os.Stdout, experiments.BenchConfig{Seed: *seed})
		if err != nil {
			return err
		}
		f, err := os.Create(*benchjson)
		if err != nil {
			return err
		}
		if err := rep.WriteJSON(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %s (%d entries)\n", *benchjson, len(rep.Results))
		return nil
	}

	cfg := experiments.RunConfig{Seed: *seed, Quick: *quick, Reps: *reps}
	if *outdir != "" {
		if err := os.MkdirAll(*outdir, 0o755); err != nil {
			return err
		}
	}
	runOne := func(e experiments.Experiment) error {
		var w io.Writer = os.Stdout
		var f *os.File
		if *outdir != "" {
			var err error
			f, err = os.Create(filepath.Join(*outdir, e.ID+".txt"))
			if err != nil {
				return err
			}
			w = io.MultiWriter(os.Stdout, f)
		}
		err := experiments.RunOne(w, e, cfg)
		if f != nil {
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		return err
	}
	if *exp == "all" {
		for _, e := range experiments.All() {
			if err := runOne(e); err != nil {
				return fmt.Errorf("%s: %w", e.ID, err)
			}
		}
		return nil
	}
	e, err := experiments.ByID(*exp)
	if err != nil {
		return err
	}
	return runOne(e)
}
