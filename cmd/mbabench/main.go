// Command mbabench regenerates the reconstructed tables and figures of the
// paper's evaluation (DESIGN.md §7).
//
// Usage:
//
//	mbabench -exp all                 # run the whole suite
//	mbabench -exp R-Fig4 -seed 7      # one experiment, custom seed
//	mbabench -list                    # list experiment ids
//	mbabench -exp all -quick          # shrunken workloads (smoke run)
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/experiments"
)

func main() {
	var (
		exp    = flag.String("exp", "all", "experiment id to run, or \"all\"")
		seed   = flag.Uint64("seed", 42, "workload and algorithm seed")
		quick  = flag.Bool("quick", false, "shrink workloads for a fast smoke run")
		reps   = flag.Int("reps", 0, "repetitions per data point (0 = experiment default)")
		list   = flag.Bool("list", false, "list experiment ids and exit")
		outdir = flag.String("outdir", "", "also write each experiment's output to <outdir>/<id>.txt")
	)
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return
	}
	cfg := experiments.RunConfig{Seed: *seed, Quick: *quick, Reps: *reps}
	if *outdir != "" {
		if err := os.MkdirAll(*outdir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "mbabench:", err)
			os.Exit(1)
		}
	}
	runOne := func(e experiments.Experiment) error {
		var w io.Writer = os.Stdout
		var f *os.File
		if *outdir != "" {
			var err error
			f, err = os.Create(filepath.Join(*outdir, e.ID+".txt"))
			if err != nil {
				return err
			}
			w = io.MultiWriter(os.Stdout, f)
		}
		err := experiments.RunOne(w, e, cfg)
		if f != nil {
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		return err
	}
	var err error
	if *exp == "all" {
		for _, e := range experiments.All() {
			if err = runOne(e); err != nil {
				err = fmt.Errorf("%s: %w", e.ID, err)
				break
			}
		}
	} else {
		var e experiments.Experiment
		if e, err = experiments.ByID(*exp); err == nil {
			err = runOne(e)
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "mbabench:", err)
		os.Exit(1)
	}
}
