// Command mbasim runs the multi-round labor-market simulation with worker
// retention dynamics, comparing how assignment policies sustain (or bleed)
// the workforce over time.
//
// Usage:
//
//	mbasim -solver greedy -rounds 20 -workers 200 -tasks 120
//	mbasim -solver quality-only -rounds 20      # watch participation decay
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/benefit"
	"repro/internal/core"
	"repro/internal/dynamics"
	"repro/internal/market"
)

func main() {
	var (
		solverName = flag.String("solver", "greedy", "assignment policy (see mbabench -list or Algorithms())")
		rounds     = flag.Int("rounds", 20, "number of assignment rounds")
		workers    = flag.Int("workers", 200, "worker population")
		tasks      = flag.Int("tasks", 120, "tasks per round")
		lambda     = flag.Float64("lambda", 0.5, "requester-side weight in [0,1]")
		growth     = flag.Float64("skill-growth", 0, "learning-by-doing rate (0 disables)")
		payMult    = flag.Float64("pay-mult", 1, "payment multiplier (reservation wages fixed)")
		seed       = flag.Uint64("seed", 42, "simulation seed")
	)
	flag.Parse()

	solver, err := core.ByName(*solverName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mbasim:", err)
		os.Exit(2)
	}
	rep, err := dynamics.Simulate(dynamics.Config{
		Rounds:            *rounds,
		Market:            market.Config{NumWorkers: *workers, NumTasks: *tasks},
		Params:            benefit.Params{Lambda: *lambda, Beta: 0.5},
		Solver:            solver,
		SkillGrowth:       *growth,
		PaymentMultiplier: *payMult,
	}, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mbasim:", err)
		os.Exit(1)
	}

	fmt.Printf("policy=%s rounds=%d workers=%d tasks/round=%d lambda=%.2f seed=%d\n\n",
		*solverName, *rounds, *workers, *tasks, *lambda, *seed)
	fmt.Println("round  active  participation  dropouts  satisfaction  accuracy  round-benefit")
	for _, rr := range rep.Rounds {
		fmt.Printf("%5d  %6d  %13.3f  %8d  %12.3f  %8.3f  %13.2f\n",
			rr.Round, rr.Active, rr.Participation, rr.Dropouts, rr.MeanSatisfaction,
			rr.MeanSpecAccuracy, rr.Metrics.TotalMutual)
	}
	fmt.Printf("\nfinal participation %.3f, cumulative mutual benefit %.1f\n",
		rep.FinalParticipation, rep.TotalMutual)
}
