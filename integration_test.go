package mba

// Integration tests: drive the full pipeline across module boundaries the
// way a deployment would — generate → assign → simulate answers → aggregate
// → multi-round dynamics → event-sourced platform — and assert the
// properties that must survive every hand-off.

import (
	"bytes"
	"testing"

	"repro/internal/benefit"
	"repro/internal/core"
	"repro/internal/platform"
	"repro/internal/stats"
)

func TestFullPipelineFreelance(t *testing.T) {
	// 1. Workload.
	in := FreelanceTrace(150, 100, 2026)
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	// 2. Assignment with the paper's algorithm and the strongest baseline.
	mutual, err := Assign(in, DefaultParams(), "exact", 2026)
	if err != nil {
		t.Fatal(err)
	}
	classical, err := Assign(in, DefaultParams(), "quality-only", 2026)
	if err != nil {
		t.Fatal(err)
	}
	// Headline property: mutual wins the combined objective, the baseline
	// wins its own side.
	if mutual.Metrics.TotalMutual < classical.Metrics.TotalMutual {
		t.Fatal("mutual assignment lost its own objective")
	}
	if classical.Metrics.TotalQuality < mutual.Metrics.TotalQuality {
		t.Fatal("quality-only lost the quality column")
	}
	// 3. End-to-end answers.
	e2e, err := EndToEnd(in, DefaultParams(), mutual, 2026)
	if err != nil {
		t.Fatal(err)
	}
	if e2e.MajorityAccuracy < 0.6 {
		t.Fatalf("end-to-end accuracy implausibly low: %v", e2e.MajorityAccuracy)
	}
	// 4. Stability and category analysis on the same result.
	if _, err := Stability(in, DefaultParams(), mutual); err != nil {
		t.Fatal(err)
	}
	cats, err := ByCategory(in, DefaultParams(), mutual)
	if err != nil {
		t.Fatal(err)
	}
	filled := 0
	for _, c := range cats {
		filled += c.Filled
	}
	if filled != len(mutual.Pairs) {
		t.Fatal("category breakdown lost pairs")
	}
}

func TestFullPipelineDynamicsAndPricing(t *testing.T) {
	solver, err := NewSolver("greedy")
	if err != nil {
		t.Fatal(err)
	}
	cfg := DynamicsConfig{
		Rounds:      10,
		Market:      MarketConfig{NumWorkers: 80, NumTasks: 50},
		Params:      DefaultParams(),
		Solver:      solver,
		SkillGrowth: 0.05,
	}
	rep, err := SimulateRounds(cfg, 11)
	if err != nil {
		t.Fatal(err)
	}
	if rep.TotalMutual <= 0 || len(rep.Rounds) != 10 {
		t.Fatalf("dynamics report broken: %+v", rep)
	}
	curve, err := RetentionCurve(cfg, []float64{0.5, 1, 2}, 11)
	if err != nil {
		t.Fatal(err)
	}
	if len(curve) != 3 {
		t.Fatal("curve incomplete")
	}
}

func TestFullPipelinePlatformRoundTrip(t *testing.T) {
	// Synthetic trace → journal → crash-torn journal → recovery →
	// assignment service round.
	events, err := platform.SyntheticTrace(platform.TraceConfig{
		Market: MarketConfig{}.Defaults(), Events: 250, RoundEvery: 50,
	}, 12)
	if err != nil {
		t.Fatal(err)
	}
	var journal bytes.Buffer
	l := platform.NewLog(&journal)
	for _, e := range events {
		if err := l.Append(e); err != nil {
			t.Fatal(err)
		}
	}
	// Tear the tail as a crash would.
	data := journal.Bytes()
	torn := data[:len(data)-7]

	state, replayErr, dropped := platform.RecoverLog(MarketConfig{}.Defaults().NumCategories, bytes.NewReader(torn))
	if replayErr != nil {
		t.Fatal(replayErr)
	}
	if dropped == nil {
		t.Fatal("torn journal not detected")
	}
	svc, err := platform.NewService(state, core.Greedy{Kind: core.MutualWeight}, benefit.DefaultParams(), nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := svc.CloseRound()
	if err != nil {
		t.Fatal(err)
	}
	if w, tk := state.Counts(); w > 5 && tk > 5 && len(res.Pairs) == 0 {
		t.Fatal("recovered market produced no assignment")
	}
}

func TestDeterminismAcrossPipeline(t *testing.T) {
	// The same seeds must reproduce every stage bit-for-bit.
	run := func() (float64, float64, float64) {
		in := MicrotaskTrace(70, 50, 99)
		res, err := Assign(in, DefaultParams(), "online-greedy", 99)
		if err != nil {
			t.Fatal(err)
		}
		e2e, err := EndToEnd(in, DefaultParams(), res, 99)
		if err != nil {
			t.Fatal(err)
		}
		solver, _ := NewSolver("greedy")
		rep, err := SimulateRounds(DynamicsConfig{
			Rounds: 6,
			Market: MarketConfig{NumWorkers: 40, NumTasks: 30},
			Params: DefaultParams(),
			Solver: solver,
		}, 99)
		if err != nil {
			t.Fatal(err)
		}
		return res.Metrics.TotalMutual, e2e.MajorityAccuracy, rep.TotalMutual
	}
	a1, b1, c1 := run()
	a2, b2, c2 := run()
	if a1 != a2 || b1 != b2 || c1 != c2 {
		t.Fatalf("pipeline not deterministic: (%v,%v,%v) vs (%v,%v,%v)", a1, b1, c1, a2, b2, c2)
	}
}

func TestAllRegisteredAlgorithmsThroughFacadeOnOneMarket(t *testing.T) {
	// One market, every algorithm, via the public API only; auction gets a
	// unit-capacity market.
	in := FreelanceTrace(40, 30, 7)
	unitCfg := MarketConfig{
		NumWorkers: 30, NumTasks: 30,
		MinCapacity: 1, MaxCapacity: 1,
		MinReplication: 1, MaxReplication: 1,
	}
	unit, err := Generate(unitCfg, 7)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range Algorithms() {
		target := in
		if name == "auction" {
			target = unit
		}
		res, err := Assign(target, DefaultParams(), name, 7)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Metrics.TotalMutual < 0 {
			t.Fatalf("%s: negative benefit", name)
		}
	}
}

func TestSeedStreamIndependence(t *testing.T) {
	// Different stages draw from differently-derived RNGs; a change of the
	// assignment seed must not change the generated market.
	in1 := FreelanceTrace(30, 30, 5)
	in2 := FreelanceTrace(30, 30, 5)
	if _, err := Assign(in1, DefaultParams(), "random", 1); err != nil {
		t.Fatal(err)
	}
	if _, err := Assign(in2, DefaultParams(), "random", 2); err != nil {
		t.Fatal(err)
	}
	for j := range in1.Tasks {
		if in1.Tasks[j] != in2.Tasks[j] {
			t.Fatal("assignment seed leaked into the market")
		}
	}
	_ = stats.NewRNG // keep the import meaningful if helpers change
}
