package mba_test

// Testable godoc examples for the public façade.  They double as
// documentation on pkg.go.dev-style doc pages and as regression tests for
// the library's determinism: the printed output is verified on every test
// run.

import (
	"fmt"

	mba "repro"
)

// ExampleAssign shows the minimal assignment session.
func ExampleAssign() {
	in := mba.FreelanceTrace(50, 40, 7)
	res, err := mba.Assign(in, mba.DefaultParams(), "exact", 7)
	if err != nil {
		panic(err)
	}
	// Coverage can stay below 100% when some tasks have no
	// specialty-matching worker in a small market.
	fmt.Printf("pairs=%d coverage=%.0f%%\n", len(res.Pairs), 100*res.Metrics.SlotCoverage)
	// Output: pairs=48 coverage=81%
}

// ExampleAssign_comparison contrasts the paper's algorithm with the
// classical quality-only baseline on the same market.
func ExampleAssign_comparison() {
	in := mba.FreelanceTrace(50, 40, 7)
	mutual, _ := mba.Assign(in, mba.DefaultParams(), "exact", 7)
	classical, _ := mba.Assign(in, mba.DefaultParams(), "quality-only", 7)
	fmt.Println("mutual wins combined benefit:  ", mutual.Metrics.TotalMutual > classical.Metrics.TotalMutual)
	fmt.Println("baseline starves the workforce:", classical.Metrics.TotalWorker < mutual.Metrics.TotalWorker)
	// Output:
	// mutual wins combined benefit:   true
	// baseline starves the workforce: true
}

// ExampleEndToEnd closes the crowdsourcing loop: assignment → simulated
// answers → aggregation.
func ExampleEndToEnd() {
	in := mba.MicrotaskTrace(80, 40, 7)
	res, _ := mba.Assign(in, mba.DefaultParams(), "greedy", 7)
	e2e, err := mba.EndToEnd(in, mba.DefaultParams(), res, 7)
	if err != nil {
		panic(err)
	}
	fmt.Println("all tasks answered:", e2e.AnsweredTasks == in.NumTasks())
	fmt.Println("weighted beats coin flip:", e2e.WeightedAccuracy > 0.5)
	// Output:
	// all tasks answered: true
	// weighted beats coin flip: true
}

// ExampleAssignWithSLA enforces a per-pair quality floor.
func ExampleAssignWithSLA() {
	in := mba.FreelanceTrace(50, 40, 7)
	res, err := mba.AssignWithSLA(in, mba.DefaultParams(), "greedy", 0.7, 7)
	if err != nil {
		panic(err)
	}
	below := 0
	for _, p := range res.Pairs {
		if p.Quality < 0.7 {
			below++
		}
	}
	fmt.Println("pairs below the SLA:", below)
	// Output: pairs below the SLA: 0
}

// ExampleStability analyses an assignment in matching-market terms.
func ExampleStability() {
	in := mba.FreelanceTrace(50, 40, 7)
	res, _ := mba.Assign(in, mba.DefaultParams(), "stable-matching", 7)
	rep, err := mba.Stability(in, mba.DefaultParams(), res)
	if err != nil {
		panic(err)
	}
	fmt.Println("blocking pairs:", rep.BlockingPairs)
	// Output: blocking pairs: 0
}
