// Churn: a live market where workers and tasks come and go, served by the
// incremental assigner — the standing assignment stays greedy-maximal after
// every event without ever recomputing from scratch.
//
//	go run ./examples/churn
package main

import (
	"fmt"
	"log"
	"time"

	mba "repro"
	"repro/internal/market"
	"repro/internal/stats"
)

func main() {
	inc, err := mba.NewIncremental(10, 25, mba.DefaultParams())
	if err != nil {
		log.Fatal(err)
	}
	r := stats.NewRNG(42)

	randomWorker := func() market.Worker {
		w := market.Worker{
			Capacity:        r.IntRange(1, 3),
			Accuracy:        make([]float64, 10),
			Interest:        make([]float64, 10),
			ReservationWage: r.Float64Range(0, 5),
		}
		for c := 0; c < 10; c++ {
			w.Accuracy[c] = r.Float64Range(0.5, 0.95)
			w.Interest[c] = r.Float64()
		}
		w.Specialties = r.Perm(10)[:r.IntRange(1, 4)]
		return w
	}
	randomTask := func() market.Task {
		return market.Task{
			Category:    r.Intn(10),
			Replication: r.IntRange(1, 3),
			Payment:     r.Float64Range(1, 25),
			Difficulty:  r.Float64Range(0, 0.7),
		}
	}

	fmt.Println("event              workers  tasks  pairs  value   repair-time")
	var workerIDs, taskIDs []int
	for step := 0; step < 30; step++ {
		var label string
		start := time.Now()
		switch {
		case step%7 == 6 && len(workerIDs) > 0:
			id := workerIDs[r.Intn(len(workerIDs))]
			if err := inc.RemoveWorker(id); err != nil {
				log.Fatal(err)
			}
			for i, v := range workerIDs {
				if v == id {
					workerIDs = append(workerIDs[:i], workerIDs[i+1:]...)
					break
				}
			}
			label = fmt.Sprintf("worker %d left", id)
		case step%2 == 0:
			id, err := inc.AddWorker(randomWorker())
			if err != nil {
				log.Fatal(err)
			}
			workerIDs = append(workerIDs, id)
			label = fmt.Sprintf("worker %d joined", id)
		default:
			id, err := inc.AddTask(randomTask())
			if err != nil {
				log.Fatal(err)
			}
			taskIDs = append(taskIDs, id)
			label = fmt.Sprintf("task %d posted", id)
		}
		elapsed := time.Since(start)
		w, t := inc.Counts()
		fmt.Printf("%-18s %7d  %5d  %5d  %6.2f  %s\n",
			label, w, t, len(inc.Pairs()), inc.Value(), elapsed.Round(time.Microsecond))
	}

	fmt.Println("\nevery repair kept the assignment feasible and greedy-maximal:")
	if err := inc.CheckInvariants(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("invariants verified ✔")
}
