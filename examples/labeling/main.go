// Labeling: an image-annotation campaign on a microtask market.  Each task
// needs several redundant answers; this example shows how the assignment
// algorithm feeds through answer aggregation into the accuracy the
// requester actually observes — the full question → assignment →
// aggregation loop from the paper's abstract.
//
//	go run ./examples/labeling
package main

import (
	"fmt"
	"log"

	mba "repro"
)

func main() {
	// A microtask market: 400 casual workers, 200 labelling tasks needing
	// 3–7 redundant answers each.
	in := mba.MicrotaskTrace(400, 200, 7)
	fmt.Printf("campaign: %d workers, %d tasks, %d answer slots requested\n\n",
		in.NumWorkers(), in.NumTasks(), in.TotalSlots())

	fmt.Println("algorithm          majority-vote  weighted-vote  EM      answered")
	for _, alg := range []string{"submodular-greedy", "greedy", "quality-only", "worker-only", "random"} {
		res, err := mba.Assign(in, mba.DefaultParams(), alg, 7)
		if err != nil {
			log.Fatal(err)
		}
		e2e, err := mba.EndToEnd(in, mba.DefaultParams(), res, 7)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-18s %13.3f  %13.3f  %.3f  %8d\n",
			alg, e2e.MajorityAccuracy, e2e.WeightedAccuracy, e2e.EMAccuracy, e2e.AnsweredTasks)
	}
	fmt.Println("\nquality-aware assignment buys label accuracy; worker-only ignores accuracy")
	fmt.Println("entirely and pays for it.  At lambda=0.5 every mutual-benefit algorithm is")
	fmt.Println("deliberately trading a little accuracy for worker utility — rerun the")
	fmt.Println("comparison with a higher lambda to watch the trade-off move.")
}
