// Quickstart: generate a small labor market, assign tasks three ways, and
// compare what each side of the market gets.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	mba "repro"
)

func main() {
	// A freelance-shaped market: 200 workers, 150 posted tasks.
	in := mba.FreelanceTrace(200, 150, 42)
	fmt.Printf("market: %d workers, %d tasks, %d eligible pairs\n\n",
		in.NumWorkers(), in.NumTasks(), in.NumEdges())

	// The paper's algorithm (exact optimum of the mutual-benefit objective)
	// against the classical quality-only baseline and a random floor.
	for _, alg := range []string{"exact", "greedy", "quality-only", "random"} {
		res, err := mba.Assign(in, mba.DefaultParams(), alg, 42)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(res.Metrics)
	}

	// Inspect a few concrete matches from the exact assignment.
	res, err := mba.Assign(in, mba.DefaultParams(), "exact", 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nsample assignments (worker ← task: quality / worker-utility / mutual):")
	for _, pr := range res.Pairs[:5] {
		fmt.Printf("  worker %3d ← task %3d: %.2f / %.2f / %.2f\n",
			pr.Worker, pr.Task, pr.Quality, pr.Utility, pr.Mutual)
	}
}
