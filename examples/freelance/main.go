// Freelance: a project marketplace over many rounds.  This example
// demonstrates the paper's behavioural claim — assignments that ignore
// worker benefit bleed the workforce — by running the same market under two
// policies and watching participation and long-run platform value diverge.
//
//	go run ./examples/freelance
package main

import (
	"fmt"
	"log"

	mba "repro"
)

func main() {
	cfg := mba.DynamicsConfig{
		Rounds: 20,
		Market: mba.MarketConfig{NumWorkers: 300, NumTasks: 180},
		Params: mba.DefaultParams(),
	}

	fmt.Println("round   mutual-benefit policy   quality-only policy")
	fmt.Println("        (participation)         (participation)")

	reports := map[string]*mba.DynamicsReport{}
	for _, name := range []string{"greedy", "quality-only"} {
		solver, err := mba.NewSolver(name)
		if err != nil {
			log.Fatal(err)
		}
		c := cfg
		c.Solver = solver
		rep, err := mba.SimulateRounds(c, 11)
		if err != nil {
			log.Fatal(err)
		}
		reports[name] = rep
	}
	mutual, quality := reports["greedy"], reports["quality-only"]
	for i := range mutual.Rounds {
		fmt.Printf("%5d   %21.3f   %19.3f\n",
			i, mutual.Rounds[i].Participation, quality.Rounds[i].Participation)
	}
	fmt.Printf("\ncumulative platform value: mutual %.1f vs quality-only %.1f\n",
		mutual.TotalMutual, quality.TotalMutual)
	fmt.Printf("final workforce:           mutual %.0f%% vs quality-only %.0f%%\n",
		100*mutual.FinalParticipation, 100*quality.FinalParticipation)
}
