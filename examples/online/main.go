// Online: workers arrive one at a time and must be assigned irrevocably —
// the live-platform regime (MBA-ON).  This example compares the online
// policies against the offline optimum across many random arrival orders.
//
//	go run ./examples/online
package main

import (
	"fmt"
	"log"

	mba "repro"
)

func main() {
	in := mba.FreelanceTrace(250, 150, 3)
	opt, err := mba.Assign(in, mba.DefaultParams(), "exact", 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("offline optimum: %.2f total mutual benefit\n\n", opt.Metrics.TotalMutual)

	fmt.Println("policy            mean-ratio  worst-ratio   (20 random arrival orders)")
	for _, alg := range []string{"online-greedy", "online-ranking", "online-twophase"} {
		var sum, worst float64
		worst = 1
		for seed := uint64(1); seed <= 20; seed++ {
			res, err := mba.Assign(in, mba.DefaultParams(), alg, seed)
			if err != nil {
				log.Fatal(err)
			}
			ratio := res.Metrics.TotalMutual / opt.Metrics.TotalMutual
			sum += ratio
			if ratio < worst {
				worst = ratio
			}
		}
		fmt.Printf("%-16s  %10.3f  %11.3f\n", alg, sum/20, worst)
	}
	fmt.Println("\nall policies clear the 0.5 worst-case bound comfortably under random order;")
	fmt.Println("two-phase reserves contested task slots for high-benefit pairs.")
}
